//! Per-branch history pattern tables (§3 of the paper).
//!
//! A pattern table maps a *history pattern* — the directions of the last
//! `bits` relevant branches — to taken/not-taken counts for the branch
//! under that pattern. Two history kinds exist, matching the paper's two
//! semi-static schemes:
//!
//! * [`HistoryKind::Global`]: one shared register records the last `bits`
//!   branches of *any* site (the **correlated branch strategy**);
//! * [`HistoryKind::Local`]: each site records its own last `bits`
//!   outcomes (the **loop branch strategy**).
//!
//! Histories are integers with the *newest* outcome in bit 0, so the
//! paper's string notation "011" (rightmost = most recent) is the integer
//! `0b011` here.

use std::collections::HashMap;

use brepl_ir::BranchId;
use brepl_trace::{SiteCounts, Trace};

use crate::report::Report;

/// Which history register arrangement feeds the pattern tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HistoryKind {
    /// One global history register shared by all branches.
    Global,
    /// One private history register per branch.
    Local,
}

/// The pattern table of a single branch site.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatternTable {
    counts: HashMap<u32, SiteCounts>,
    executions: u64,
}

impl PatternTable {
    fn record(&mut self, pattern: u32, taken: bool) {
        let c = self.counts.entry(pattern).or_default();
        if taken {
            c.taken += 1;
        } else {
            c.not_taken += 1;
        }
        self.executions += 1;
    }

    /// Total executions of the branch.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Number of distinct patterns observed.
    pub fn used_patterns(&self) -> usize {
        self.counts.len()
    }

    /// Counts under one exact full-length pattern.
    pub fn pattern(&self, pattern: u32) -> SiteCounts {
        self.counts.get(&pattern).copied().unwrap_or_default()
    }

    /// Iterates `(pattern, counts)` over observed patterns.
    pub fn iter_patterns(&self) -> impl Iterator<Item = (u32, SiteCounts)> + '_ {
        self.counts.iter().map(|(&p, &c)| (p, c))
    }

    /// Aggregated counts over all observed patterns whose `len` low bits
    /// (i.e. most recent `len` outcomes) equal `suffix` — this is how the
    /// paper computes "the number of taken and not taken branches for all
    /// shorter patterns".
    ///
    /// # Panics
    ///
    /// Panics if `len > 31`.
    pub fn suffix_counts(&self, suffix: u32, len: u32) -> SiteCounts {
        assert!(len <= 31, "suffix length exceeds 31 bits");
        let mask = if len == 0 { 0 } else { (1u32 << len) - 1 };
        let mut total = SiteCounts::default();
        for (&p, c) in &self.counts {
            if p & mask == suffix & mask {
                total.taken += c.taken;
                total.not_taken += c.not_taken;
            }
        }
        total
    }

    /// Mispredictions when each full pattern predicts its majority
    /// direction — the ideal history-based semi-static prediction.
    pub fn ideal_mispredictions(&self) -> u64 {
        self.counts.values().map(SiteCounts::minority_count).sum()
    }

    /// A canonical 128-bit fingerprint of the table: equal tables (same
    /// `(pattern, taken, not_taken)` triples, in any internal order) hash
    /// equal. Used as a memo key by search caches — two branches with
    /// identical profiled behavior share one machine search.
    pub fn fingerprint(&self) -> (u64, u64) {
        let mut entries: Vec<(u32, SiteCounts)> =
            self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        entries.sort_unstable_by_key(|&(p, _)| p);
        // Two independent FNV-1a streams over the sorted entries; a joint
        // collision across 128 bits is not a realistic concern.
        let mut a = 0xcbf2_9ce4_8422_2325u64;
        let mut b = 0x6c62_272e_07bb_0142u64;
        let mut mix = |x: u64| {
            a = (a ^ x).wrapping_mul(0x0000_0100_0000_01b3);
            b = (b ^ x.rotate_left(32)).wrapping_mul(0x0000_01b3_0000_0193);
        };
        mix(entries.len() as u64);
        for (p, c) in entries {
            mix(u64::from(p));
            mix(c.taken);
            mix(c.not_taken);
        }
        (a, b)
    }
}

/// Pattern tables for every site of one trace, built with a given history
/// kind and length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternTableSet {
    kind: HistoryKind,
    bits: u32,
    tables: Vec<PatternTable>,
    total_events: u64,
}

impl PatternTableSet {
    /// Builds pattern tables from a trace.
    ///
    /// History registers start at all-zeros ("not taken"), matching a
    /// profiling run that begins with empty history.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 16`.
    pub fn build(trace: &Trace, kind: HistoryKind, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "history bits must be in 1..=16");
        let n_sites = trace.max_site().map_or(0, |s| s.index() + 1);
        // When the dense scratch (one counter row of 2^bits patterns per
        // site) stays modest, accumulate into a flat array — one indexed
        // add per event — and compact into the hash-backed tables at the
        // end. Otherwise (long histories or huge site ranges) fall back
        // to the per-event hash path.
        const MAX_SCRATCH_ENTRIES: usize = 1 << 22;
        let dense = n_sites
            .checked_mul(1usize << bits)
            .is_some_and(|entries| entries <= MAX_SCRATCH_ENTRIES);
        let tables = if dense {
            Self::build_dense(trace, kind, bits, n_sites)
        } else {
            Self::build_sparse(trace, kind, bits, n_sites)
        };
        PatternTableSet {
            kind,
            bits,
            tables,
            total_events: trace.len() as u64,
        }
    }

    /// Batched build: per-site dense pattern rows in one flat scratch
    /// array, then compaction. Produces tables equal to the sparse path.
    fn build_dense(
        trace: &Trace,
        kind: HistoryKind,
        bits: u32,
        n_sites: usize,
    ) -> Vec<PatternTable> {
        let mask: u32 = (1 << bits) - 1;
        let mut scratch = vec![SiteCounts::default(); n_sites << bits];
        let mut global: u32 = 0;
        let mut local = vec![0u32; n_sites];
        match kind {
            HistoryKind::Global => {
                for &p in trace.packed() {
                    let i = (p >> 1) as usize;
                    let taken = u64::from(p & 1);
                    let c = &mut scratch[i << bits | global as usize];
                    c.taken += taken;
                    c.not_taken += 1 - taken;
                    global = (global << 1 | p & 1) & mask;
                }
            }
            HistoryKind::Local => {
                for &p in trace.packed() {
                    let i = (p >> 1) as usize;
                    let taken = u64::from(p & 1);
                    let h = local[i];
                    let c = &mut scratch[i << bits | h as usize];
                    c.taken += taken;
                    c.not_taken += 1 - taken;
                    local[i] = (h << 1 | p & 1) & mask;
                }
            }
        }
        let mut tables = Vec::with_capacity(n_sites);
        for i in 0..n_sites {
            let row = &scratch[i << bits..(i + 1) << bits];
            let mut table = PatternTable::default();
            for (pattern, &c) in row.iter().enumerate() {
                let total = c.total();
                if total > 0 {
                    table.counts.insert(pattern as u32, c);
                    table.executions += total;
                }
            }
            tables.push(table);
        }
        tables
    }

    /// Event-by-event hash-table build — the fallback when the dense
    /// scratch would be too large, and the behavioral definition the
    /// dense path must match.
    fn build_sparse(
        trace: &Trace,
        kind: HistoryKind,
        bits: u32,
        n_sites: usize,
    ) -> Vec<PatternTable> {
        let mask: u32 = (1 << bits) - 1;
        let mut tables: Vec<PatternTable> = Vec::new();
        tables.resize_with(n_sites, PatternTable::default);
        let mut global: u32 = 0;
        let mut local = vec![0u32; n_sites];
        for ev in trace.iter() {
            let i = ev.site.index();
            let h = match kind {
                HistoryKind::Global => global,
                HistoryKind::Local => local[i],
            };
            tables[i].record(h, ev.taken);
            let bit = u32::from(ev.taken);
            match kind {
                HistoryKind::Global => global = (global << 1 | bit) & mask,
                HistoryKind::Local => local[i] = (local[i] << 1 | bit) & mask,
            }
        }
        tables
    }

    /// The history arrangement used.
    pub fn kind(&self) -> HistoryKind {
        self.kind
    }

    /// History length in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The table for one site (empty table if the site never executed).
    pub fn site(&self, site: BranchId) -> Option<&PatternTable> {
        self.tables.get(site.index()).filter(|t| t.executions > 0)
    }

    /// Iterates `(site, table)` over executed sites.
    pub fn iter_sites(&self) -> impl Iterator<Item = (BranchId, &PatternTable)> + '_ {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.executions > 0)
            .map(|(i, t)| (BranchId::from_index(i), t))
    }

    /// The ideal semi-static report: each `(site, pattern)` pair predicts
    /// its majority direction. With `kind = Global, bits = 1` this is the
    /// paper's *1 bit correlation* row; with `Local` it is the *k bit loop*
    /// rows.
    pub fn report(&self) -> Report {
        let mut r = Report::new();
        for (site, t) in self.iter_sites() {
            r.record_bulk(site, t.executions(), t.ideal_mispredictions());
        }
        r
    }

    /// Average pattern-table fill rate over executed branches, in percent —
    /// Table 2 of the paper. A site that observed `u` distinct patterns out
    /// of `2^bits` contributes `100·u/2^bits`.
    pub fn fill_rate_percent(&self) -> f64 {
        let capacity = (1u64 << self.bits) as f64;
        let mut sum = 0.0;
        let mut n = 0usize;
        for (_, t) in self.iter_sites() {
            sum += 100.0 * t.used_patterns() as f64 / capacity;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_trace::TraceEvent;

    fn ev(site: u32, taken: bool) -> TraceEvent {
        TraceEvent {
            site: BranchId(site),
            taken,
        }
    }

    /// A perfectly alternating branch.
    fn alternating(n: usize) -> Trace {
        (0..n).map(|i| ev(0, i % 2 == 0)).collect()
    }

    #[test]
    fn local_one_bit_nails_alternating() {
        let t = alternating(1000);
        let pts = PatternTableSet::build(&t, HistoryKind::Local, 1);
        let table = pts.site(BranchId(0)).unwrap();
        // After "not taken" (0) it is always taken; after "taken" (1) never.
        assert_eq!(table.pattern(0).not_taken, 0);
        assert!(table.pattern(0).taken > 0);
        assert_eq!(table.pattern(1).taken, 0);
        let report = pts.report();
        assert_eq!(report.mispredictions(), 0);
    }

    #[test]
    fn profile_cannot_nail_alternating_but_history_can() {
        let t = alternating(1000);
        let stats = t.stats();
        assert!((stats.profile_misprediction_percent() - 50.0).abs() < 0.2);
        let pts = PatternTableSet::build(&t, HistoryKind::Local, 1);
        assert_eq!(pts.report().misprediction_percent(), 0.0);
    }

    #[test]
    fn global_history_captures_correlation() {
        // Site 1 always repeats what site 0 just did: global 1-bit history
        // predicts it perfectly, local history does not.
        let mut trace = Trace::new();
        let dirs = [true, false, false, true, true, true, false, false];
        for (i, &d) in dirs.iter().cycle().take(4000).enumerate() {
            let _ = i;
            trace.push(ev(0, d));
            trace.push(ev(1, d));
        }
        let global = PatternTableSet::build(&trace, HistoryKind::Global, 1);
        let (_, w) = global.report().site(BranchId(1));
        assert_eq!(w, 0, "global history should predict the copier exactly");
        let local = PatternTableSet::build(&trace, HistoryKind::Local, 1);
        let (_, wl) = local.report().site(BranchId(1));
        assert!(wl > 0, "local history cannot see the other branch");
    }

    #[test]
    fn suffix_counts_aggregate_longer_patterns() {
        // Period-4 pattern 1101 repeating.
        let dirs = [true, true, false, true];
        let t: Trace = (0..4000).map(|i| ev(0, dirs[i % 4])).collect();
        let pts = PatternTableSet::build(&t, HistoryKind::Local, 3);
        let table = pts.site(BranchId(0)).unwrap();
        // Suffix "1" (last outcome taken) covers 3 of 4 phase positions.
        let s1 = table.suffix_counts(0b1, 1);
        let s0 = table.suffix_counts(0b0, 1);
        assert_eq!(s1.total() + s0.total(), table.executions());
        assert!(s1.total() > s0.total());
        // Length-0 suffix aggregates everything.
        let all = table.suffix_counts(0, 0);
        assert_eq!(all.total(), table.executions());
    }

    #[test]
    fn fill_rate_is_sparse_for_regular_branches() {
        // A strongly periodic branch touches few of the 2^9 patterns, like
        // the paper's 0.1%–2% fill observation.
        let dirs = [true, true, true, false];
        let t: Trace = (0..100_000).map(|i| ev(0, dirs[i % 4])).collect();
        let pts = PatternTableSet::build(&t, HistoryKind::Local, 9);
        // 4 steady-state patterns plus at most 9 warmup patterns out of 512.
        assert!(pts.fill_rate_percent() < 3.0);
        let table = pts.site(BranchId(0)).unwrap();
        assert!(table.used_patterns() <= 13);
    }

    #[test]
    fn longer_history_never_hurts_ideal_prediction() {
        let dirs = [true, false, true, true, false, false, true];
        let t: Trace = (0..7000).map(|i| ev(0, dirs[i % 7])).collect();
        let mut prev = u64::MAX;
        for bits in 1..=9 {
            let pts = PatternTableSet::build(&t, HistoryKind::Local, bits);
            let w = pts.report().mispredictions();
            assert!(w <= prev, "bits={bits}: {w} > {prev}");
            prev = w;
        }
        // Period 7 fits in 9 bits of history: perfect prediction modulo
        // warmup.
        assert!(prev < 10);
    }

    #[test]
    fn fingerprint_is_canonical_and_discriminating() {
        let t = alternating(1000);
        let a = PatternTableSet::build(&t, HistoryKind::Local, 4);
        let b = PatternTableSet::build(&t, HistoryKind::Local, 4);
        // Same data, independently built hash maps: equal fingerprints.
        assert_eq!(
            a.site(BranchId(0)).unwrap().fingerprint(),
            b.site(BranchId(0)).unwrap().fingerprint()
        );
        // A different trace produces a different fingerprint.
        let t2: Trace = (0..1000).map(|i| ev(0, i % 3 == 0)).collect();
        let c = PatternTableSet::build(&t2, HistoryKind::Local, 4);
        assert_ne!(
            a.site(BranchId(0)).unwrap().fingerprint(),
            c.site(BranchId(0)).unwrap().fingerprint()
        );
    }

    #[test]
    fn dense_and_sparse_builds_agree() {
        // The batched dense-scratch build must produce tables *equal* to
        // the event-by-event hash build, for both history kinds,
        // including warmup patterns and multi-site interleavings.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut trace = Trace::new();
        for _ in 0..50_000 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            trace.push(ev((r % 13) as u32, r & (1 << 40) != 0));
        }
        for kind in [HistoryKind::Global, HistoryKind::Local] {
            for bits in [1, 4, 9] {
                let n_sites = trace.max_site().map_or(0, |s| s.index() + 1);
                let dense = PatternTableSet::build_dense(&trace, kind, bits, n_sites);
                let sparse = PatternTableSet::build_sparse(&trace, kind, bits, n_sites);
                assert_eq!(dense, sparse, "kind={kind:?} bits={bits}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn zero_bits_rejected() {
        let _ = PatternTableSet::build(&Trace::new(), HistoryKind::Local, 0);
    }

    #[test]
    fn empty_trace_fill_rate_zero() {
        let pts = PatternTableSet::build(&Trace::new(), HistoryKind::Local, 4);
        assert_eq!(pts.fill_rate_percent(), 0.0);
        assert!(pts.site(BranchId(0)).is_none());
        assert_eq!(pts.bits(), 4);
        assert_eq!(pts.kind(), HistoryKind::Local);
    }
}
