//! Per-branch history pattern tables (§3 of the paper).
//!
//! A pattern table maps a *history pattern* — the directions of the last
//! `bits` relevant branches — to taken/not-taken counts for the branch
//! under that pattern. Two history kinds exist, matching the paper's two
//! semi-static schemes:
//!
//! * [`HistoryKind::Global`]: one shared register records the last `bits`
//!   branches of *any* site (the **correlated branch strategy**);
//! * [`HistoryKind::Local`]: each site records its own last `bits`
//!   outcomes (the **loop branch strategy**).
//!
//! Histories are integers with the *newest* outcome in bit 0, so the
//! paper's string notation "011" (rightmost = most recent) is the integer
//! `0b011` here.

use std::collections::HashMap;

use brepl_ir::BranchId;
use brepl_trace::{SiteCounts, Trace};

use crate::report::Report;

/// Which history register arrangement feeds the pattern tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HistoryKind {
    /// One global history register shared by all branches.
    Global,
    /// One private history register per branch.
    Local,
}

/// The pattern table of a single branch site.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatternTable {
    counts: HashMap<u32, SiteCounts>,
    executions: u64,
}

impl PatternTable {
    fn record(&mut self, pattern: u32, taken: bool) {
        let c = self.counts.entry(pattern).or_default();
        if taken {
            c.taken += 1;
        } else {
            c.not_taken += 1;
        }
        self.executions += 1;
    }

    /// Builds the table of a single branch directly from its outcome
    /// stream — equal to `PatternTableSet::build` on a one-site trace of
    /// the same outcomes with [`HistoryKind::Local`] history, without
    /// materializing the trace. The history register starts at all-zeros.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 16`.
    pub fn from_outcomes(outcomes: impl IntoIterator<Item = bool>, bits: u32) -> PatternTable {
        assert!((1..=16).contains(&bits), "history bits must be in 1..=16");
        let mask: u32 = (1 << bits) - 1;
        let mut scratch = vec![SiteCounts::default(); 1usize << bits];
        let mut h: u32 = 0;
        for taken in outcomes {
            let bit = u32::from(taken);
            let c = &mut scratch[h as usize];
            c.taken += u64::from(bit);
            c.not_taken += u64::from(1 - bit);
            h = (h << 1 | bit) & mask;
        }
        let mut table = PatternTable::default();
        for (pattern, &c) in scratch.iter().enumerate() {
            let total = c.total();
            if total > 0 {
                table.counts.insert(pattern as u32, c);
                table.executions += total;
            }
        }
        table
    }

    /// Total executions of the branch.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Number of distinct patterns observed.
    pub fn used_patterns(&self) -> usize {
        self.counts.len()
    }

    /// Counts under one exact full-length pattern.
    pub fn pattern(&self, pattern: u32) -> SiteCounts {
        self.counts.get(&pattern).copied().unwrap_or_default()
    }

    /// Iterates `(pattern, counts)` over observed patterns.
    pub fn iter_patterns(&self) -> impl Iterator<Item = (u32, SiteCounts)> + '_ {
        self.counts.iter().map(|(&p, &c)| (p, c))
    }

    /// Aggregated counts over all observed patterns whose `len` low bits
    /// (i.e. most recent `len` outcomes) equal `suffix` — this is how the
    /// paper computes "the number of taken and not taken branches for all
    /// shorter patterns".
    ///
    /// # Panics
    ///
    /// Panics if `len > 31`.
    pub fn suffix_counts(&self, suffix: u32, len: u32) -> SiteCounts {
        assert!(len <= 31, "suffix length exceeds 31 bits");
        let mask = if len == 0 { 0 } else { (1u32 << len) - 1 };
        let mut total = SiteCounts::default();
        for (&p, c) in &self.counts {
            if p & mask == suffix & mask {
                total.taken += c.taken;
                total.not_taken += c.not_taken;
            }
        }
        total
    }

    /// Mispredictions when each full pattern predicts its majority
    /// direction — the ideal history-based semi-static prediction.
    pub fn ideal_mispredictions(&self) -> u64 {
        self.counts.values().map(SiteCounts::minority_count).sum()
    }

    /// The table of the *complemented* outcome stream, derived without
    /// re-walking the stream.
    ///
    /// Preconditions: `self` is the table of a single branch's outcome
    /// stream under `bits` of local history (history register starting at
    /// all-zeros, as every builder here does), and `warmup` holds the
    /// stream's first `min(bits, executions)` outcomes. Then complementing
    /// the stream complements each event's history register — except for
    /// the first `bits` events, whose registers are only complemented in
    /// their low, already-filled bits while the zero padding above stays
    /// zero. So the result is the complement-swap of every entry
    /// (`pattern → !pattern`, taken/not-taken exchanged) with those warmup
    /// events moved from their complement-mapped pattern to the true one.
    /// Equals [`PatternTable::from_outcomes`] on the complemented stream.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 16`.
    pub fn complement_single_site(&self, bits: u32, warmup: &[bool]) -> PatternTable {
        assert!((1..=16).contains(&bits), "history bits must be in 1..=16");
        let mask: u32 = (1 << bits) - 1;
        debug_assert_eq!(
            warmup.len() as u64,
            self.executions.min(u64::from(bits)),
            "warmup must hold the first min(bits, executions) outcomes"
        );
        let mut counts: HashMap<u32, SiteCounts> = HashMap::with_capacity(self.counts.len());
        for (&p, c) in &self.counts {
            counts.insert(
                !p & mask,
                SiteCounts {
                    taken: c.not_taken,
                    not_taken: c.taken,
                },
            );
        }
        let mut h_orig: u32 = 0;
        let mut h_inv: u32 = 0;
        for &o in warmup {
            // The complemented stream records outcome `!o` at history
            // `h_inv`; the complement-swap above filed it under
            // `!h_orig` instead.
            let filed = !h_orig & mask;
            if filed != h_inv {
                let e = counts
                    .get_mut(&filed)
                    .expect("complement-swap created every warmup pattern");
                if o {
                    e.not_taken -= 1;
                } else {
                    e.taken -= 1;
                }
                let e = counts.entry(h_inv).or_default();
                if o {
                    e.not_taken += 1;
                } else {
                    e.taken += 1;
                }
            }
            h_orig = (h_orig << 1 | u32::from(o)) & mask;
            h_inv = (h_inv << 1 | u32::from(!o)) & mask;
        }
        counts.retain(|_, c| c.total() > 0);
        PatternTable {
            counts,
            executions: self.executions,
        }
    }

    /// Precomputes every suffix aggregation up to `max_len` bits, so
    /// machine builders that query [`PatternTable::suffix_counts`] once
    /// per state pay one table scan total instead of one per query.
    ///
    /// # Panics
    ///
    /// Panics if `max_len > 16`.
    pub fn suffix_aggregate(&self, max_len: u32) -> SuffixAggregate<'_> {
        assert!(max_len <= 16, "aggregate length exceeds 16 bits");
        let mask = if max_len == 0 {
            0
        } else {
            (1u32 << max_len) - 1
        };
        let mut levels: Vec<Vec<SiteCounts>> = Vec::with_capacity(max_len as usize + 1);
        let mut top = vec![SiteCounts::default(); 1usize << max_len];
        for (&p, c) in &self.counts {
            let t = &mut top[(p & mask) as usize];
            t.taken += c.taken;
            t.not_taken += c.not_taken;
        }
        levels.push(top);
        // levels[0] ends up holding max_len-bit suffixes; fold down one
        // bit per step, then reverse so levels[l] answers length-l queries.
        for l in (0..max_len).rev() {
            let prev = levels.last().expect("pushed above");
            let mut cur = vec![SiteCounts::default(); 1usize << l];
            for (s, c) in cur.iter_mut().enumerate() {
                let a = prev[s];
                let b = prev[s | 1 << l];
                c.taken = a.taken + b.taken;
                c.not_taken = a.not_taken + b.not_taken;
            }
            levels.push(cur);
        }
        levels.reverse();
        SuffixAggregate {
            table: self,
            max_len,
            levels,
        }
    }

    /// A canonical 128-bit fingerprint of the table: equal tables (same
    /// `(pattern, taken, not_taken)` triples, in any internal order) hash
    /// equal. Used as a memo key by search caches — two branches with
    /// identical profiled behavior share one machine search.
    pub fn fingerprint(&self) -> (u64, u64) {
        let mut entries: Vec<(u32, SiteCounts)> =
            self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        entries.sort_unstable_by_key(|&(p, _)| p);
        // Two independent FNV-1a streams over the sorted entries; a joint
        // collision across 128 bits is not a realistic concern.
        let mut a = 0xcbf2_9ce4_8422_2325u64;
        let mut b = 0x6c62_272e_07bb_0142u64;
        let mut mix = |x: u64| {
            a = (a ^ x).wrapping_mul(0x0000_0100_0000_01b3);
            b = (b ^ x.rotate_left(32)).wrapping_mul(0x0000_01b3_0000_0193);
        };
        mix(entries.len() as u64);
        for (p, c) in entries {
            mix(u64::from(p));
            mix(c.taken);
            mix(c.not_taken);
        }
        (a, b)
    }
}

/// Precomputed suffix sums of one [`PatternTable`] — see
/// [`PatternTable::suffix_aggregate`]. `counts(suffix, len)` equals
/// `table.suffix_counts(suffix, len)` for every query; lengths beyond the
/// precomputed range fall back to the table scan.
pub struct SuffixAggregate<'a> {
    table: &'a PatternTable,
    max_len: u32,
    /// `levels[l][s]` aggregates every observed pattern whose `l` low bits
    /// equal `s`.
    levels: Vec<Vec<SiteCounts>>,
}

impl SuffixAggregate<'_> {
    /// Exactly [`PatternTable::suffix_counts`] on the aggregated table.
    ///
    /// # Panics
    ///
    /// Panics if `len > 31`.
    pub fn counts(&self, suffix: u32, len: u32) -> SiteCounts {
        assert!(len <= 31, "suffix length exceeds 31 bits");
        if len > self.max_len {
            return self.table.suffix_counts(suffix, len);
        }
        let mask = if len == 0 { 0 } else { (1u32 << len) - 1 };
        self.levels[len as usize][(suffix & mask) as usize]
    }
}

/// Largest dense scratch (in `SiteCounts` entries) the batched builders
/// will allocate before falling back to per-event hashing. Shared with the
/// fused analytics pass so both take the dense/sparse fork at the same
/// threshold.
pub(crate) const MAX_SCRATCH_ENTRIES: usize = 1 << 22;

/// Pattern tables for every site of one trace, built with a given history
/// kind and length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternTableSet {
    kind: HistoryKind,
    bits: u32,
    tables: Vec<PatternTable>,
    total_events: u64,
}

impl PatternTableSet {
    /// Builds pattern tables from a trace.
    ///
    /// History registers start at all-zeros ("not taken"), matching a
    /// profiling run that begins with empty history.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 16`.
    pub fn build(trace: &Trace, kind: HistoryKind, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "history bits must be in 1..=16");
        let n_sites = trace.max_site().map_or(0, |s| s.index() + 1);
        // When the dense scratch (one counter row of 2^bits patterns per
        // site) stays modest, accumulate into a flat array — one indexed
        // add per event — and compact into the hash-backed tables at the
        // end. Otherwise (long histories or huge site ranges) fall back
        // to the per-event hash path.
        let dense = n_sites
            .checked_mul(1usize << bits)
            .is_some_and(|entries| entries <= MAX_SCRATCH_ENTRIES);
        let tables = if dense {
            Self::build_dense(trace, kind, bits, n_sites)
        } else {
            Self::build_sparse(trace, kind, bits, n_sites)
        };
        PatternTableSet {
            kind,
            bits,
            tables,
            total_events: trace.len() as u64,
        }
    }

    /// Batched build: per-site dense pattern rows in one flat scratch
    /// array, then compaction. Produces tables equal to the sparse path.
    fn build_dense(
        trace: &Trace,
        kind: HistoryKind,
        bits: u32,
        n_sites: usize,
    ) -> Vec<PatternTable> {
        let mask: u32 = (1 << bits) - 1;
        let mut scratch = vec![SiteCounts::default(); n_sites << bits];
        let mut global: u32 = 0;
        let mut local = vec![0u32; n_sites];
        match kind {
            HistoryKind::Global => {
                for &p in trace.packed() {
                    let i = (p >> 1) as usize;
                    let taken = u64::from(p & 1);
                    let c = &mut scratch[i << bits | global as usize];
                    c.taken += taken;
                    c.not_taken += 1 - taken;
                    global = (global << 1 | p & 1) & mask;
                }
            }
            HistoryKind::Local => {
                for &p in trace.packed() {
                    let i = (p >> 1) as usize;
                    let taken = u64::from(p & 1);
                    let h = local[i];
                    let c = &mut scratch[i << bits | h as usize];
                    c.taken += taken;
                    c.not_taken += 1 - taken;
                    local[i] = (h << 1 | p & 1) & mask;
                }
            }
        }
        compact_scratch(&scratch, n_sites, bits)
    }

    /// Assembles a set from a dense per-site scratch, exactly as
    /// [`PatternTableSet::build`]'s dense path would after its event walk.
    /// The fused analytics pass accumulates the same scratch layout
    /// (`scratch[site << bits | history]`) during its single traversal and
    /// hands it here for compaction.
    pub(crate) fn from_dense_scratch(
        kind: HistoryKind,
        bits: u32,
        scratch: &[SiteCounts],
        n_sites: usize,
        total_events: u64,
    ) -> Self {
        assert!((1..=16).contains(&bits), "history bits must be in 1..=16");
        debug_assert_eq!(scratch.len(), n_sites << bits);
        PatternTableSet {
            kind,
            bits,
            tables: compact_scratch(scratch, n_sites, bits),
            total_events,
        }
    }

    /// Event-by-event hash-table build — the fallback when the dense
    /// scratch would be too large, and the behavioral definition the
    /// dense path must match.
    fn build_sparse(
        trace: &Trace,
        kind: HistoryKind,
        bits: u32,
        n_sites: usize,
    ) -> Vec<PatternTable> {
        let mask: u32 = (1 << bits) - 1;
        let mut tables: Vec<PatternTable> = Vec::new();
        tables.resize_with(n_sites, PatternTable::default);
        let mut global: u32 = 0;
        let mut local = vec![0u32; n_sites];
        for ev in trace.iter() {
            let i = ev.site.index();
            let h = match kind {
                HistoryKind::Global => global,
                HistoryKind::Local => local[i],
            };
            tables[i].record(h, ev.taken);
            let bit = u32::from(ev.taken);
            match kind {
                HistoryKind::Global => global = (global << 1 | bit) & mask,
                HistoryKind::Local => local[i] = (local[i] << 1 | bit) & mask,
            }
        }
        tables
    }

    /// The history arrangement used.
    pub fn kind(&self) -> HistoryKind {
        self.kind
    }

    /// History length in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The table for one site (empty table if the site never executed).
    pub fn site(&self, site: BranchId) -> Option<&PatternTable> {
        self.tables.get(site.index()).filter(|t| t.executions > 0)
    }

    /// Iterates `(site, table)` over executed sites.
    pub fn iter_sites(&self) -> impl Iterator<Item = (BranchId, &PatternTable)> + '_ {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.executions > 0)
            .map(|(i, t)| (BranchId::from_index(i), t))
    }

    /// The ideal semi-static report: each `(site, pattern)` pair predicts
    /// its majority direction. With `kind = Global, bits = 1` this is the
    /// paper's *1 bit correlation* row; with `Local` it is the *k bit loop*
    /// rows.
    pub fn report(&self) -> Report {
        let mut r = Report::new();
        for (site, t) in self.iter_sites() {
            r.record_bulk(site, t.executions(), t.ideal_mispredictions());
        }
        r
    }

    /// Derives the `bits`-length set of the same trace and history kind
    /// by suffix aggregation, without re-walking the trace.
    ///
    /// This is exact, not an approximation: every history register starts
    /// at all-zeros and shifts in the same outcome bits, so at every event
    /// the `bits`-length history equals the low `bits` bits of the longer
    /// history (induction: `h_k' = (h_k << 1 | b) & mask_k = (h_full' &
    /// mask_k)`). Folding each table's counts over the low `bits` bits of
    /// its patterns therefore reproduces [`PatternTableSet::build`] with
    /// the shorter length — counts, executions, used-pattern sets and fill
    /// rates all included.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= self.bits()`.
    pub fn aggregated(&self, bits: u32) -> PatternTableSet {
        assert!(
            bits >= 1 && bits <= self.bits,
            "aggregated length must be in 1..=bits()"
        );
        let mask: u32 = (1 << bits) - 1;
        let tables = self
            .tables
            .iter()
            .map(|t| {
                let mut counts: HashMap<u32, SiteCounts> = HashMap::new();
                for (&p, c) in &t.counts {
                    let e = counts.entry(p & mask).or_default();
                    e.taken += c.taken;
                    e.not_taken += c.not_taken;
                }
                PatternTable {
                    counts,
                    executions: t.executions,
                }
            })
            .collect();
        PatternTableSet {
            kind: self.kind,
            bits,
            tables,
            total_events: self.total_events,
        }
    }

    /// Average pattern-table fill rate over executed branches, in percent —
    /// Table 2 of the paper. A site that observed `u` distinct patterns out
    /// of `2^bits` contributes `100·u/2^bits`.
    pub fn fill_rate_percent(&self) -> f64 {
        let capacity = (1u64 << self.bits) as f64;
        let mut sum = 0.0;
        let mut n = 0usize;
        for (_, t) in self.iter_sites() {
            sum += 100.0 * t.used_patterns() as f64 / capacity;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Compacts a dense per-site scratch (`scratch[site << bits | pattern]`)
/// into hash-backed tables, keeping only observed patterns — the shared
/// tail of every dense build path.
fn compact_scratch(scratch: &[SiteCounts], n_sites: usize, bits: u32) -> Vec<PatternTable> {
    let mut tables = Vec::with_capacity(n_sites);
    for i in 0..n_sites {
        let row = &scratch[i << bits..(i + 1) << bits];
        let mut table = PatternTable::default();
        for (pattern, &c) in row.iter().enumerate() {
            let total = c.total();
            if total > 0 {
                table.counts.insert(pattern as u32, c);
                table.executions += total;
            }
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_trace::TraceEvent;

    fn ev(site: u32, taken: bool) -> TraceEvent {
        TraceEvent {
            site: BranchId(site),
            taken,
        }
    }

    /// A perfectly alternating branch.
    fn alternating(n: usize) -> Trace {
        (0..n).map(|i| ev(0, i % 2 == 0)).collect()
    }

    #[test]
    fn local_one_bit_nails_alternating() {
        let t = alternating(1000);
        let pts = PatternTableSet::build(&t, HistoryKind::Local, 1);
        let table = pts.site(BranchId(0)).unwrap();
        // After "not taken" (0) it is always taken; after "taken" (1) never.
        assert_eq!(table.pattern(0).not_taken, 0);
        assert!(table.pattern(0).taken > 0);
        assert_eq!(table.pattern(1).taken, 0);
        let report = pts.report();
        assert_eq!(report.mispredictions(), 0);
    }

    #[test]
    fn profile_cannot_nail_alternating_but_history_can() {
        let t = alternating(1000);
        let stats = t.stats();
        assert!((stats.profile_misprediction_percent() - 50.0).abs() < 0.2);
        let pts = PatternTableSet::build(&t, HistoryKind::Local, 1);
        assert_eq!(pts.report().misprediction_percent(), 0.0);
    }

    #[test]
    fn global_history_captures_correlation() {
        // Site 1 always repeats what site 0 just did: global 1-bit history
        // predicts it perfectly, local history does not.
        let mut trace = Trace::new();
        let dirs = [true, false, false, true, true, true, false, false];
        for (i, &d) in dirs.iter().cycle().take(4000).enumerate() {
            let _ = i;
            trace.push(ev(0, d));
            trace.push(ev(1, d));
        }
        let global = PatternTableSet::build(&trace, HistoryKind::Global, 1);
        let (_, w) = global.report().site(BranchId(1));
        assert_eq!(w, 0, "global history should predict the copier exactly");
        let local = PatternTableSet::build(&trace, HistoryKind::Local, 1);
        let (_, wl) = local.report().site(BranchId(1));
        assert!(wl > 0, "local history cannot see the other branch");
    }

    #[test]
    fn suffix_counts_aggregate_longer_patterns() {
        // Period-4 pattern 1101 repeating.
        let dirs = [true, true, false, true];
        let t: Trace = (0..4000).map(|i| ev(0, dirs[i % 4])).collect();
        let pts = PatternTableSet::build(&t, HistoryKind::Local, 3);
        let table = pts.site(BranchId(0)).unwrap();
        // Suffix "1" (last outcome taken) covers 3 of 4 phase positions.
        let s1 = table.suffix_counts(0b1, 1);
        let s0 = table.suffix_counts(0b0, 1);
        assert_eq!(s1.total() + s0.total(), table.executions());
        assert!(s1.total() > s0.total());
        // Length-0 suffix aggregates everything.
        let all = table.suffix_counts(0, 0);
        assert_eq!(all.total(), table.executions());
    }

    #[test]
    fn fill_rate_is_sparse_for_regular_branches() {
        // A strongly periodic branch touches few of the 2^9 patterns, like
        // the paper's 0.1%–2% fill observation.
        let dirs = [true, true, true, false];
        let t: Trace = (0..100_000).map(|i| ev(0, dirs[i % 4])).collect();
        let pts = PatternTableSet::build(&t, HistoryKind::Local, 9);
        // 4 steady-state patterns plus at most 9 warmup patterns out of 512.
        assert!(pts.fill_rate_percent() < 3.0);
        let table = pts.site(BranchId(0)).unwrap();
        assert!(table.used_patterns() <= 13);
    }

    #[test]
    fn longer_history_never_hurts_ideal_prediction() {
        let dirs = [true, false, true, true, false, false, true];
        let t: Trace = (0..7000).map(|i| ev(0, dirs[i % 7])).collect();
        let mut prev = u64::MAX;
        for bits in 1..=9 {
            let pts = PatternTableSet::build(&t, HistoryKind::Local, bits);
            let w = pts.report().mispredictions();
            assert!(w <= prev, "bits={bits}: {w} > {prev}");
            prev = w;
        }
        // Period 7 fits in 9 bits of history: perfect prediction modulo
        // warmup.
        assert!(prev < 10);
    }

    #[test]
    fn fingerprint_is_canonical_and_discriminating() {
        let t = alternating(1000);
        let a = PatternTableSet::build(&t, HistoryKind::Local, 4);
        let b = PatternTableSet::build(&t, HistoryKind::Local, 4);
        // Same data, independently built hash maps: equal fingerprints.
        assert_eq!(
            a.site(BranchId(0)).unwrap().fingerprint(),
            b.site(BranchId(0)).unwrap().fingerprint()
        );
        // A different trace produces a different fingerprint.
        let t2: Trace = (0..1000).map(|i| ev(0, i % 3 == 0)).collect();
        let c = PatternTableSet::build(&t2, HistoryKind::Local, 4);
        assert_ne!(
            a.site(BranchId(0)).unwrap().fingerprint(),
            c.site(BranchId(0)).unwrap().fingerprint()
        );
    }

    #[test]
    fn dense_and_sparse_builds_agree() {
        // The batched dense-scratch build must produce tables *equal* to
        // the event-by-event hash build, for both history kinds,
        // including warmup patterns and multi-site interleavings.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut trace = Trace::new();
        for _ in 0..50_000 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            trace.push(ev((r % 13) as u32, r & (1 << 40) != 0));
        }
        for kind in [HistoryKind::Global, HistoryKind::Local] {
            for bits in [1, 4, 9] {
                let n_sites = trace.max_site().map_or(0, |s| s.index() + 1);
                let dense = PatternTableSet::build_dense(&trace, kind, bits, n_sites);
                let sparse = PatternTableSet::build_sparse(&trace, kind, bits, n_sites);
                assert_eq!(dense, sparse, "kind={kind:?} bits={bits}");
            }
        }
    }

    #[test]
    fn from_outcomes_equals_single_site_build() {
        let mut state = 0xfeed_face_cafe_f00du64;
        for n in [0usize, 1, 100, 5000] {
            let dirs: Vec<bool> = (0..n)
                .map(|_| {
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 == 1
                })
                .collect();
            for bits in [1, 4, 9] {
                let direct = PatternTable::from_outcomes(dirs.iter().copied(), bits);
                let t: Trace = dirs.iter().map(|&d| ev(0, d)).collect();
                let via_set = PatternTableSet::build(&t, HistoryKind::Local, bits);
                match via_set.site(BranchId(0)) {
                    Some(table) => assert_eq!(&direct, table, "n={n} bits={bits}"),
                    None => assert_eq!(direct.executions(), 0),
                }
            }
        }
    }

    #[test]
    fn complement_single_site_equals_inverted_rebuild() {
        let mut state = 0x0dd0_b0a7_1234_5678u64;
        for n in [0usize, 1, 3, 8, 9, 10, 100, 5000] {
            let dirs: Vec<bool> = (0..n)
                .map(|_| {
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 == 1
                })
                .collect();
            for bits in [1u32, 4, 9] {
                let table = PatternTable::from_outcomes(dirs.iter().copied(), bits);
                let warmup: Vec<bool> = dirs.iter().copied().take(bits as usize).collect();
                let derived = table.complement_single_site(bits, &warmup);
                let rebuilt = PatternTable::from_outcomes(dirs.iter().map(|&d| !d), bits);
                assert_eq!(derived, rebuilt, "n={n} bits={bits}");
            }
        }
    }

    #[test]
    fn suffix_aggregate_matches_scan() {
        let dirs: Vec<bool> = (0..4000).map(|i| matches!(i % 7, 0 | 2 | 3)).collect();
        let table = PatternTable::from_outcomes(dirs.iter().copied(), 9);
        let agg = table.suffix_aggregate(9);
        for len in 0..=10u32 {
            for suffix in [0u32, 1, 2, 5, 0b1_0110, 0b1_1111_1111, 0b11_0000_0001] {
                assert_eq!(
                    agg.counts(suffix, len),
                    table.suffix_counts(suffix, len),
                    "suffix={suffix:b} len={len}"
                );
            }
        }
    }

    #[test]
    fn aggregated_equals_direct_build() {
        // Suffix aggregation of a 9-bit set must reproduce the directly
        // built k-bit set for every k, both history kinds, including
        // warmup events and multi-site interleavings.
        let mut state = 0xbead_cafe_0042_9001u64;
        let mut trace = Trace::new();
        for _ in 0..40_000 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            trace.push(ev((r % 11) as u32, r & (1 << 40) != 0));
        }
        for kind in [HistoryKind::Global, HistoryKind::Local] {
            let full = PatternTableSet::build(&trace, kind, 9);
            for bits in 1..=9u32 {
                let direct = PatternTableSet::build(&trace, kind, bits);
                assert_eq!(full.aggregated(bits), direct, "kind={kind:?} bits={bits}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "aggregated length")]
    fn aggregated_beyond_built_length_rejected() {
        let t = alternating(10);
        let pts = PatternTableSet::build(&t, HistoryKind::Local, 4);
        let _ = pts.aggregated(5);
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn zero_bits_rejected() {
        let _ = PatternTableSet::build(&Trace::new(), HistoryKind::Local, 0);
    }

    #[test]
    fn empty_trace_fill_rate_zero() {
        let pts = PatternTableSet::build(&Trace::new(), HistoryKind::Local, 4);
        assert_eq!(pts.fill_rate_percent(), 0.0);
        assert!(pts.site(BranchId(0)).is_none());
        assert_eq!(pts.bits(), 4);
        assert_eq!(pts.kind(), HistoryKind::Local);
    }
}
