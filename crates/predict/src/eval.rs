//! Evaluation harnesses: replay a trace against a dynamic predictor or a
//! fixed per-site prediction.

use std::collections::HashMap;

use brepl_ir::BranchId;
use brepl_trace::Trace;

use crate::report::Report;

/// An online (run-time) branch predictor.
///
/// The simulator calls [`predict`](Self::predict) before revealing the
/// outcome and [`update`](Self::update) afterwards, exactly like the
/// fetch/resolve split in hardware.
pub trait DynamicPredictor {
    /// Predicts the direction of the next execution of `site`.
    fn predict(&mut self, site: BranchId) -> bool;
    /// Informs the predictor of the actual outcome.
    fn update(&mut self, site: BranchId, taken: bool);
    /// A short display name ("2bit", "two-level 4K", ...).
    fn name(&self) -> &'static str;
}

/// Replays `trace` against `predictor` and reports mispredictions.
///
/// The predictor is stateful, so this is inherently sequential; the pass
/// still works off the packed event words directly and batches the
/// misprediction accounting into pre-sized per-site arrays.
pub fn simulate_dynamic<P: DynamicPredictor + ?Sized>(predictor: &mut P, trace: &Trace) -> Report {
    let n_sites = trace.max_site().map_or(0, |s| s.index() + 1);
    let mut counts = vec![(0u64, 0u64); n_sites];
    for &p in trace.packed() {
        let site = BranchId(p >> 1);
        let taken = p & 1 == 1;
        let guess = predictor.predict(site);
        let c = &mut counts[site.index()];
        c.0 += 1;
        c.1 += u64::from(guess != taken);
        predictor.update(site, taken);
    }
    Report::from_counts(counts)
}

/// A fixed, per-site prediction — the output shape of every static and
/// semi-static strategy that does not use history.
///
/// Sites absent from the map fall back to `default` (the usual choice is
/// `true`, i.e. predict taken, matching Smith's baseline).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StaticPrediction {
    predictions: HashMap<BranchId, bool>,
    /// Prediction for sites with no entry.
    pub default: bool,
}

impl StaticPrediction {
    /// An empty prediction set that predicts `default` everywhere.
    pub fn with_default(default: bool) -> Self {
        StaticPrediction {
            predictions: HashMap::new(),
            default,
        }
    }

    /// Sets the prediction for one site.
    pub fn set(&mut self, site: BranchId, taken: bool) {
        self.predictions.insert(site, taken);
    }

    /// The prediction for `site`.
    pub fn get(&self, site: BranchId) -> bool {
        self.predictions.get(&site).copied().unwrap_or(self.default)
    }

    /// Iterates over the explicit `(site, prediction)` entries, in no
    /// particular order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchId, bool)> + '_ {
        self.predictions.iter().map(|(&s, &p)| (s, p))
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.predictions.len()
    }

    /// True when no explicit entries exist.
    pub fn is_empty(&self) -> bool {
        self.predictions.is_empty()
    }
}

impl FromIterator<(BranchId, bool)> for StaticPrediction {
    fn from_iter<I: IntoIterator<Item = (BranchId, bool)>>(iter: I) -> Self {
        StaticPrediction {
            predictions: iter.into_iter().collect(),
            default: true,
        }
    }
}

/// Scores a fixed per-site prediction against a trace.
///
/// Runs as a batched array pass: the per-site predictions are spread
/// into a dense direction table once, then the packed trace is scored
/// with one indexed compare per event — no hash lookup on the hot path.
pub fn evaluate_static(prediction: &StaticPrediction, trace: &Trace) -> Report {
    let n_sites = trace.max_site().map_or(0, |s| s.index() + 1);
    let mut predicted: Vec<bool> = vec![prediction.default; n_sites];
    for (site, taken) in prediction.iter() {
        if site.index() < n_sites {
            predicted[site.index()] = taken;
        }
    }
    let mut counts = vec![(0u64, 0u64); n_sites];
    for &p in trace.packed() {
        let i = (p >> 1) as usize;
        let c = &mut counts[i];
        c.0 += 1;
        c.1 += u64::from((p & 1 == 1) != predicted[i]);
    }
    Report::from_counts(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_trace::TraceEvent;

    struct AlwaysTaken;
    impl DynamicPredictor for AlwaysTaken {
        fn predict(&mut self, _: BranchId) -> bool {
            true
        }
        fn update(&mut self, _: BranchId, _: bool) {}
        fn name(&self) -> &'static str {
            "always-taken"
        }
    }

    fn alternating(n: usize) -> Trace {
        (0..n)
            .map(|i| TraceEvent {
                site: BranchId(0),
                taken: i % 2 == 0,
            })
            .collect()
    }

    #[test]
    fn always_taken_on_alternating_is_half_wrong() {
        let r = simulate_dynamic(&mut AlwaysTaken, &alternating(100));
        assert_eq!(r.mispredictions(), 50);
        assert_eq!(AlwaysTaken.name(), "always-taken");
    }

    #[test]
    fn static_prediction_lookup_and_eval() {
        let mut p = StaticPrediction::with_default(true);
        assert!(p.is_empty());
        p.set(BranchId(0), false);
        assert_eq!(p.len(), 1);
        assert!(!p.get(BranchId(0)));
        assert!(p.get(BranchId(9)));
        let r = evaluate_static(&p, &alternating(10));
        // Predicting not-taken on alternating: wrong on even indices.
        assert_eq!(r.mispredictions(), 5);
    }

    #[test]
    fn from_iter_collects() {
        let p: StaticPrediction = vec![(BranchId(1), false)].into_iter().collect();
        assert!(!p.get(BranchId(1)));
        assert!(p.get(BranchId(2)));
    }
}
