//! Misprediction accounting shared by every evaluation harness.

use brepl_ir::BranchId;

/// Per-site and aggregate misprediction counts for one strategy on one
/// trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    per_site: Vec<(u64, u64)>, // (executions, mispredictions), indexed by site
    total: u64,
    wrong: u64,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a report directly from per-site `(executions,
    /// mispredictions)` counts indexed by site — the output shape of the
    /// batched array evaluators, equal to the report the same counts
    /// would produce through [`Report::record`].
    pub fn from_counts(per_site: Vec<(u64, u64)>) -> Self {
        let mut total = 0u64;
        let mut wrong = 0u64;
        for &(t, w) in &per_site {
            debug_assert!(w <= t);
            total += t;
            wrong += w;
        }
        Report {
            per_site,
            total,
            wrong,
        }
    }

    /// Records one prediction outcome.
    pub fn record(&mut self, site: BranchId, correct: bool) {
        let i = site.index();
        if i >= self.per_site.len() {
            self.per_site.resize(i + 1, (0, 0));
        }
        self.per_site[i].0 += 1;
        self.total += 1;
        if !correct {
            self.per_site[i].1 += 1;
            self.wrong += 1;
        }
    }

    /// Merges per-site counts directly (used by closed-form evaluators that
    /// never replay the trace event by event).
    pub fn record_bulk(&mut self, site: BranchId, executions: u64, mispredictions: u64) {
        debug_assert!(mispredictions <= executions);
        let i = site.index();
        if i >= self.per_site.len() {
            self.per_site.resize(i + 1, (0, 0));
        }
        self.per_site[i].0 += executions;
        self.per_site[i].1 += mispredictions;
        self.total += executions;
        self.wrong += mispredictions;
    }

    /// Total predictions made.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.wrong
    }

    /// Aggregate misprediction rate in percent (0 when the trace is empty).
    pub fn misprediction_percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.wrong as f64 / self.total as f64
        }
    }

    /// `(executions, mispredictions)` for one site.
    pub fn site(&self, site: BranchId) -> (u64, u64) {
        self.per_site.get(site.index()).copied().unwrap_or((0, 0))
    }

    /// Iterates `(site, executions, mispredictions)` over executed sites.
    pub fn iter_sites(&self) -> impl Iterator<Item = (BranchId, u64, u64)> + '_ {
        self.per_site
            .iter()
            .enumerate()
            .filter(|(_, &(t, _))| t > 0)
            .map(|(i, &(t, w))| (BranchId::from_index(i), t, w))
    }

    /// Number of sites where this report has strictly fewer mispredictions
    /// than `other` — the paper's "improved branches" metric.
    pub fn improved_sites_vs(&self, other: &Report) -> usize {
        let n = self.per_site.len().max(other.per_site.len());
        (0..n)
            .filter(|&i| {
                let site = BranchId::from_index(i);
                let (t, w) = self.site(site);
                let (_, ow) = other.site(site);
                t > 0 && w < ow
            })
            .count()
    }

    /// Average executed instructions per misprediction, given the total
    /// instruction count of the run — the measure Fisher & Freudenberger
    /// prefer over raw rates.
    pub fn instructions_per_misprediction(&self, instructions: u64) -> f64 {
        if self.wrong == 0 {
            f64::INFINITY
        } else {
            instructions as f64 / self.wrong as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut r = Report::new();
        r.record(BranchId(0), true);
        r.record(BranchId(0), false);
        r.record(BranchId(3), false);
        assert_eq!(r.total(), 3);
        assert_eq!(r.mispredictions(), 2);
        assert!((r.misprediction_percent() - 66.666).abs() < 0.01);
        assert_eq!(r.site(BranchId(0)), (2, 1));
        assert_eq!(r.site(BranchId(1)), (0, 0));
        assert_eq!(r.iter_sites().count(), 2);
    }

    #[test]
    fn bulk_matches_incremental() {
        let mut a = Report::new();
        for _ in 0..10 {
            a.record(BranchId(2), false);
        }
        let mut b = Report::new();
        b.record_bulk(BranchId(2), 10, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn improved_sites() {
        let mut profile = Report::new();
        profile.record_bulk(BranchId(0), 10, 5);
        profile.record_bulk(BranchId(1), 10, 0);
        let mut better = Report::new();
        better.record_bulk(BranchId(0), 10, 1);
        better.record_bulk(BranchId(1), 10, 0);
        assert_eq!(better.improved_sites_vs(&profile), 1);
        assert_eq!(profile.improved_sites_vs(&better), 0);
    }

    #[test]
    fn empty_is_zero_percent() {
        assert_eq!(Report::new().misprediction_percent(), 0.0);
    }

    #[test]
    fn instructions_per_misprediction() {
        let mut r = Report::new();
        r.record_bulk(BranchId(0), 4, 2);
        assert_eq!(r.instructions_per_misprediction(100), 50.0);
        let clean = Report::new();
        assert!(clean.instructions_per_misprediction(100).is_infinite());
    }
}
