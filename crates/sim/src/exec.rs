//! The pre-decoded executable form and its flat dispatch loop.
//!
//! [`ExecModule::decode`] lowers a [`Module`] once, up front, into a flat
//! arena of fixed-size [`Op`]s: block structure becomes program-counter
//! indices, operands become packed register/constant-pool indices, call
//! targets become function indices and intrinsics are specialized per
//! kind. The run loop is then a single `ops[pc]` dispatch with no
//! per-step allocation — call frames share one register stack — and no
//! name lookups.
//!
//! Malformed code that the old tree-walking interpreter only rejected
//! when reached (an unknown callee, an intrinsic missing its argument)
//! decodes to a [`Op::Trap`] carrying the exact [`RunError`], so errors
//! still surface lazily and the two engines stay observably identical.
//! The reference tree-walk lives on in [`crate::ReferenceMachine`] as the
//! oracle the golden tests compare against.

use brepl_ir::{BinOp, BranchId, CmpOp, Inst, Intrinsic, Module, Operand, Term, Value};
use brepl_trace::{Trace, TraceEvent};

use crate::arith::{eval_bin, eval_cmp};
use crate::error::RunError;
use crate::machine::Outcome;

/// Packed-operand flag: the low 31 bits index the constant pool instead
/// of the current frame's registers.
const IMM_BIT: u32 = 1 << 31;

/// Sentinel for "no register" in optional destination/value slots.
const NONE: u32 = u32::MAX;

/// One decoded function.
pub(crate) struct ExecFunc {
    pub n_params: u32,
    pub n_regs: u32,
    pub entry_pc: u32,
}

/// One fixed-size decoded operation. Branch targets are absolute indices
/// into the op arena; operands are packed (see [`IMM_BIT`]).
pub(crate) enum Op {
    Const {
        dst: u32,
        value: Value,
    },
    Copy {
        dst: u32,
        src: u32,
    },
    Bin {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    Cmp {
        op: CmpOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    Ftoi {
        dst: u32,
        src: u32,
    },
    Itof {
        dst: u32,
        src: u32,
    },
    Load {
        dst: u32,
        addr: u32,
    },
    Store {
        addr: u32,
        value: u32,
    },
    Alloc {
        dst: u32,
        words: u32,
    },
    Call {
        func: u32,
        args_start: u32,
        args_len: u32,
        ret_dst: u32,
    },
    Out {
        arg: u32,
        dst: u32,
    },
    In {
        dst: u32,
    },
    Rand {
        arg: u32,
        dst: u32,
    },
    Sqrt {
        arg: u32,
        dst: u32,
    },
    /// Raises `traps[err]` when executed (lazy decode-time diagnosis).
    Trap {
        err: u32,
    },
    Br {
        cond: u32,
        then_pc: u32,
        else_pc: u32,
        site: BranchId,
    },
    /// Fused compare-and-branch: a block whose last instruction is the
    /// `Cmp` producing the terminator's condition register dispatches
    /// once for both. Costs two steps (the compare and the branch,
    /// fuel-checked separately) and still writes the compare's
    /// destination register, so it is observably the unfused pair.
    CmpBr {
        op: CmpOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        then_pc: u32,
        else_pc: u32,
        site: BranchId,
    },
    /// An unconditional jump, pre-threaded through any chain of further
    /// jump-only blocks: `target` is the end of the chain and `count` the
    /// number of jumps collapsed (each still costs one step, so fuel
    /// accounting is unchanged).
    Jmp {
        target: u32,
        count: u32,
    },
    Ret {
        value: u32,
    },
    /// Two consecutive `Bin`s in one dispatch. The second op's slot keeps
    /// its plain form (a call can still return into it); the fused head
    /// executes both, fuel-checking between them, and skips two slots.
    BinBin {
        a_op: BinOp,
        a_dst: u32,
        a_lhs: u32,
        a_rhs: u32,
        b_op: BinOp,
        b_dst: u32,
        b_lhs: u32,
        b_rhs: u32,
    },
    /// A `Bin` feeding straight into a `Load` — the dominant addressing
    /// idiom (`mul`/`add` then `load`). Same slot discipline as
    /// [`Op::BinBin`].
    BinLoad {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        l_dst: u32,
        l_addr: u32,
    },
    /// A block-closing `Bin` fused with the (already threaded) `Jmp`
    /// terminator that follows it — the back-edge of nearly every loop
    /// body.
    BinJmp {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        target: u32,
        count: u32,
    },
    /// A mid-block `Cmp` feeding a following `Bin` in one dispatch —
    /// the flag-then-arithmetic idiom. Same slot discipline as
    /// [`Op::BinBin`].
    CmpBin {
        c_op: CmpOp,
        c_dst: u32,
        c_lhs: u32,
        c_rhs: u32,
        b_op: BinOp,
        b_dst: u32,
        b_lhs: u32,
        b_rhs: u32,
    },
    /// A `Bin` feeding a following `Store` — the compute-address (or
    /// compute-value) half of nearly every heap write.
    BinStore {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        s_addr: u32,
        s_value: u32,
    },
    /// A block-closing `Bin` fused with the conditional branch after it.
    /// The condition register is whatever the `Br` read — produced
    /// earlier in the block or in a predecessor — so unlike
    /// [`Op::CmpBr`] no compare runs here.
    BinBr {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        cond: u32,
        then_pc: u32,
        else_pc: u32,
        site: BranchId,
    },
    /// A `Load` feeding the fused compare-and-branch that closes the
    /// block — the search-loop idiom (`load; cmp; br`). Costs three
    /// steps, each fuel-checked in original order.
    LoadCmpBr {
        l_dst: u32,
        l_addr: u32,
        op: CmpOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        then_pc: u32,
        else_pc: u32,
        site: BranchId,
    },
    /// Two consecutive `Const`s in one dispatch — loop-preheader
    /// initialization runs. Same slot discipline as [`Op::BinBin`].
    ConstConst {
        a_dst: u32,
        a_value: Value,
        b_dst: u32,
        b_value: Value,
    },
    /// A block-closing `Const` fused with the (threaded) `Jmp` after it.
    ConstJmp {
        dst: u32,
        value: Value,
        target: u32,
        count: u32,
    },
    /// A `Copy` feeding the fused compare-and-branch that closes the
    /// block. Three steps, like [`Op::LoadCmpBr`].
    CopyCmpBr {
        dst: u32,
        src: u32,
        c_op: CmpOp,
        c_dst: u32,
        c_lhs: u32,
        c_rhs: u32,
        then_pc: u32,
        else_pc: u32,
        site: BranchId,
    },
    /// A `Bin` feeding the fused compare-and-branch — the canonical
    /// loop latch (`i += step; cmp i, n; br`). Three steps, like
    /// [`Op::LoadCmpBr`].
    BinCmpBr {
        a_op: BinOp,
        a_dst: u32,
        a_lhs: u32,
        a_rhs: u32,
        c_op: CmpOp,
        c_dst: u32,
        c_lhs: u32,
        c_rhs: u32,
        then_pc: u32,
        else_pc: u32,
        site: BranchId,
    },
    /// Triple: two `Bin`s closing a block plus its (threaded) `Jmp` —
    /// the two-instruction loop body falling into its back-edge. The
    /// head executes all three; the two tail slots keep their own
    /// (pair-fused) forms for direct entry.
    BinBinJmp {
        a_op: BinOp,
        a_dst: u32,
        a_lhs: u32,
        a_rhs: u32,
        b_op: BinOp,
        b_dst: u32,
        b_lhs: u32,
        b_rhs: u32,
        target: u32,
        count: u32,
    },
    /// Triple: a `Cmp`, a `Bin`, and the conditional branch closing the
    /// block — the compare whose flag survives one arithmetic op before
    /// being branched on. Same slot discipline as [`Op::BinBinJmp`].
    CmpBinBr {
        c_op: CmpOp,
        c_dst: u32,
        c_lhs: u32,
        c_rhs: u32,
        b_op: BinOp,
        b_dst: u32,
        b_lhs: u32,
        b_rhs: u32,
        cond: u32,
        then_pc: u32,
        else_pc: u32,
        site: BranchId,
    },
    /// Triple: a `Load` feeding a `Cmp` feeding a `Bin` — the
    /// scan-and-accumulate inner-loop run. Same slot discipline as
    /// [`Op::BinBinJmp`]; advances three slots.
    LoadCmpBin {
        l_dst: u32,
        l_addr: u32,
        c_op: CmpOp,
        c_dst: u32,
        c_lhs: u32,
        c_rhs: u32,
        b_op: BinOp,
        b_dst: u32,
        b_lhs: u32,
        b_rhs: u32,
    },
}

/// A module lowered for execution.
pub(crate) struct ExecModule {
    funcs: Vec<ExecFunc>,
    ops: Vec<Op>,
    consts: Vec<Value>,
    /// Flattened packed argument lists for every call site.
    call_args: Vec<u32>,
    /// Errors raised by [`Op::Trap`].
    traps: Vec<RunError>,
}

impl ExecModule {
    /// Lowers `module`. Function indices match the module's own, so a
    /// [`brepl_ir::FuncId`] resolved by name indexes `funcs` directly.
    pub(crate) fn decode(module: &Module) -> ExecModule {
        let mut exec = ExecModule {
            funcs: Vec::with_capacity(module.function_count()),
            ops: Vec::new(),
            consts: Vec::new(),
            call_args: Vec::new(),
            traps: Vec::new(),
        };
        for (_, f) in module.iter_functions() {
            // Lay the function's blocks out contiguously; each block costs
            // its instructions plus one terminator op.
            let base = exec.ops.len() as u32;
            let mut block_pcs = Vec::with_capacity(f.blocks.len());
            let mut off = base;
            for b in &f.blocks {
                block_pcs.push(off);
                off += b.insts.len() as u32 + 1;
            }
            exec.funcs.push(ExecFunc {
                n_params: f.n_params,
                n_regs: f.n_regs,
                entry_pc: block_pcs[f.entry.index()],
            });
            for b in &f.blocks {
                for inst in &b.insts {
                    let op = exec.decode_inst(module, inst);
                    exec.ops.push(op);
                }
                let term = exec.decode_term(&b.term, &block_pcs);
                exec.fuse_cmp_br(b, term);
            }
        }
        exec.thread_jumps();
        exec.fuse_triples();
        exec.fuse_pairs();
        exec
    }

    /// Rewrites three-op straight-line runs into one dispatch, before the
    /// pair pass so the pair pass can still fuse the tail slots for
    /// direct entry. Same overlap discipline as [`ExecModule::fuse_pairs`]:
    /// every slot keeps an op executing the original sequence from there.
    fn fuse_triples(&mut self) {
        for i in 0..self.ops.len().saturating_sub(2) {
            let fused = match (&self.ops[i], &self.ops[i + 1], &self.ops[i + 2]) {
                (
                    &Op::Bin { op, dst, lhs, rhs },
                    &Op::Bin {
                        op: b_op,
                        dst: b_dst,
                        lhs: b_lhs,
                        rhs: b_rhs,
                    },
                    &Op::Jmp { target, count },
                ) => Op::BinBinJmp {
                    a_op: op,
                    a_dst: dst,
                    a_lhs: lhs,
                    a_rhs: rhs,
                    b_op,
                    b_dst,
                    b_lhs,
                    b_rhs,
                    target,
                    count,
                },
                (
                    &Op::Cmp { op, dst, lhs, rhs },
                    &Op::Bin {
                        op: b_op,
                        dst: b_dst,
                        lhs: b_lhs,
                        rhs: b_rhs,
                    },
                    &Op::Br {
                        cond,
                        then_pc,
                        else_pc,
                        site,
                    },
                ) => Op::CmpBinBr {
                    c_op: op,
                    c_dst: dst,
                    c_lhs: lhs,
                    c_rhs: rhs,
                    b_op,
                    b_dst,
                    b_lhs,
                    b_rhs,
                    cond,
                    then_pc,
                    else_pc,
                    site,
                },
                (
                    &Op::Load {
                        dst: l_dst,
                        addr: l_addr,
                    },
                    &Op::Cmp { op, dst, lhs, rhs },
                    &Op::Bin {
                        op: b_op,
                        dst: b_dst,
                        lhs: b_lhs,
                        rhs: b_rhs,
                    },
                ) => Op::LoadCmpBin {
                    l_dst,
                    l_addr,
                    c_op: op,
                    c_dst: dst,
                    c_lhs: lhs,
                    c_rhs: rhs,
                    b_op,
                    b_dst,
                    b_lhs,
                    b_rhs,
                },
                _ => continue,
            };
            self.ops[i] = fused;
        }
    }

    /// Rewrites every op whose successor slot forms a fusable pair into
    /// the two-in-one superinstruction. Rewrites overlap deliberately: a
    /// run `a b c` becomes `ab bc c`, and whichever slot control enters
    /// (fallthrough, branch target, or a call's return pc) executes the
    /// original sequence — a fused head performs both ops and advances
    /// two slots (or jumps away, for terminator-tailed fusions). Pairs of
    /// instruction-kind ops never span a block boundary; the `Jmp`-, `Br`-
    /// and `CmpBr`-tailed cases fuse a block's last instruction with its
    /// own terminator, which also cannot cross blocks.
    fn fuse_pairs(&mut self) {
        for i in 0..self.ops.len().saturating_sub(1) {
            let fused = match (&self.ops[i], &self.ops[i + 1]) {
                (
                    &Op::Bin { op, dst, lhs, rhs },
                    &Op::Bin {
                        op: b_op,
                        dst: b_dst,
                        lhs: b_lhs,
                        rhs: b_rhs,
                    },
                ) => Op::BinBin {
                    a_op: op,
                    a_dst: dst,
                    a_lhs: lhs,
                    a_rhs: rhs,
                    b_op,
                    b_dst,
                    b_lhs,
                    b_rhs,
                },
                (
                    &Op::Bin { op, dst, lhs, rhs },
                    &Op::Load {
                        dst: l_dst,
                        addr: l_addr,
                    },
                ) => Op::BinLoad {
                    op,
                    dst,
                    lhs,
                    rhs,
                    l_dst,
                    l_addr,
                },
                (&Op::Bin { op, dst, lhs, rhs }, &Op::Jmp { target, count }) => Op::BinJmp {
                    op,
                    dst,
                    lhs,
                    rhs,
                    target,
                    count,
                },
                (
                    &Op::Bin { op, dst, lhs, rhs },
                    &Op::Store {
                        addr: s_addr,
                        value: s_value,
                    },
                ) => Op::BinStore {
                    op,
                    dst,
                    lhs,
                    rhs,
                    s_addr,
                    s_value,
                },
                (
                    &Op::Bin { op, dst, lhs, rhs },
                    &Op::Br {
                        cond,
                        then_pc,
                        else_pc,
                        site,
                    },
                ) => Op::BinBr {
                    op,
                    dst,
                    lhs,
                    rhs,
                    cond,
                    then_pc,
                    else_pc,
                    site,
                },
                (
                    &Op::Bin { op, dst, lhs, rhs },
                    &Op::CmpBr {
                        op: c_op,
                        dst: c_dst,
                        lhs: c_lhs,
                        rhs: c_rhs,
                        then_pc,
                        else_pc,
                        site,
                    },
                ) => Op::BinCmpBr {
                    a_op: op,
                    a_dst: dst,
                    a_lhs: lhs,
                    a_rhs: rhs,
                    c_op,
                    c_dst,
                    c_lhs,
                    c_rhs,
                    then_pc,
                    else_pc,
                    site,
                },
                (
                    &Op::Cmp { op, dst, lhs, rhs },
                    &Op::Bin {
                        op: b_op,
                        dst: b_dst,
                        lhs: b_lhs,
                        rhs: b_rhs,
                    },
                ) => Op::CmpBin {
                    c_op: op,
                    c_dst: dst,
                    c_lhs: lhs,
                    c_rhs: rhs,
                    b_op,
                    b_dst,
                    b_lhs,
                    b_rhs,
                },
                (
                    &Op::Load {
                        dst: l_dst,
                        addr: l_addr,
                    },
                    &Op::CmpBr {
                        op,
                        dst,
                        lhs,
                        rhs,
                        then_pc,
                        else_pc,
                        site,
                    },
                ) => Op::LoadCmpBr {
                    l_dst,
                    l_addr,
                    op,
                    dst,
                    lhs,
                    rhs,
                    then_pc,
                    else_pc,
                    site,
                },
                (
                    &Op::Const { dst, value },
                    &Op::Const {
                        dst: b_dst,
                        value: b_value,
                    },
                ) => Op::ConstConst {
                    a_dst: dst,
                    a_value: value,
                    b_dst,
                    b_value,
                },
                (&Op::Const { dst, value }, &Op::Jmp { target, count }) => Op::ConstJmp {
                    dst,
                    value,
                    target,
                    count,
                },
                (
                    &Op::Copy { dst, src },
                    &Op::CmpBr {
                        op,
                        dst: c_dst,
                        lhs,
                        rhs,
                        then_pc,
                        else_pc,
                        site,
                    },
                ) => Op::CopyCmpBr {
                    dst,
                    src,
                    c_op: op,
                    c_dst,
                    c_lhs: lhs,
                    c_rhs: rhs,
                    then_pc,
                    else_pc,
                    site,
                },
                _ => continue,
            };
            self.ops[i] = fused;
        }
    }

    /// Pushes the decoded terminator, fusing it into the preceding `Cmp`
    /// when that compare is the block's last instruction and produces the
    /// branch condition. The terminator slot keeps the plain `Br` so the
    /// block layout (and every pc) is unchanged; the fused case never
    /// reaches it, because the `CmpBr` slot jumps away.
    fn fuse_cmp_br(&mut self, block: &brepl_ir::Block, term: Op) {
        if let Op::Br {
            cond,
            then_pc,
            else_pc,
            site,
        } = term
        {
            if cond & IMM_BIT == 0 && !block.insts.is_empty() {
                if let Some(&Op::Cmp { op, dst, lhs, rhs }) = self.ops.last() {
                    if dst == cond {
                        *self.ops.last_mut().expect("just matched") = Op::CmpBr {
                            op,
                            dst,
                            lhs,
                            rhs,
                            then_pc,
                            else_pc,
                            site,
                        };
                    }
                }
            }
        }
        self.ops.push(term);
    }

    /// Collapses chains of jump-only blocks: a `Jmp` whose target is
    /// another `Jmp` is rewritten to point at the end of the chain,
    /// carrying the number of jumps folded so the run loop burns the same
    /// fuel. Chains are capped (cycles of empty blocks stay partially
    /// threaded and spin at run time exactly as before, until fuel runs
    /// out).
    fn thread_jumps(&mut self) {
        const MAX_CHAIN: u32 = 64;
        for pc in 0..self.ops.len() {
            let Op::Jmp { target, .. } = self.ops[pc] else {
                continue;
            };
            let mut t = target;
            let mut count = 1u32;
            while count < MAX_CHAIN {
                match self.ops[t as usize] {
                    Op::Jmp {
                        target: next,
                        count: c,
                    } if t as usize != pc => {
                        t = next;
                        count += c;
                    }
                    _ => break,
                }
            }
            self.ops[pc] = Op::Jmp { target: t, count };
        }
    }

    fn pack(&mut self, o: Operand) -> u32 {
        match o {
            Operand::Reg(r) => r.index() as u32,
            Operand::Imm(v) => {
                let idx = self.consts.len() as u32;
                self.consts.push(v);
                idx | IMM_BIT
            }
        }
    }

    fn pack_dst(dst: Option<brepl_ir::Reg>) -> u32 {
        dst.map_or(NONE, |r| r.index() as u32)
    }

    fn trap(&mut self, err: RunError) -> Op {
        let idx = self.traps.len() as u32;
        self.traps.push(err);
        Op::Trap { err: idx }
    }

    fn decode_inst(&mut self, module: &Module, inst: &Inst) -> Op {
        match inst {
            Inst::Const { dst, value } => Op::Const {
                dst: dst.index() as u32,
                value: *value,
            },
            Inst::Copy { dst, src } => Op::Copy {
                dst: dst.index() as u32,
                src: self.pack(*src),
            },
            Inst::Bin { op, dst, lhs, rhs } => Op::Bin {
                op: *op,
                dst: dst.index() as u32,
                lhs: self.pack(*lhs),
                rhs: self.pack(*rhs),
            },
            Inst::Cmp { op, dst, lhs, rhs } => Op::Cmp {
                op: *op,
                dst: dst.index() as u32,
                lhs: self.pack(*lhs),
                rhs: self.pack(*rhs),
            },
            Inst::Ftoi { dst, src } => Op::Ftoi {
                dst: dst.index() as u32,
                src: self.pack(*src),
            },
            Inst::Itof { dst, src } => Op::Itof {
                dst: dst.index() as u32,
                src: self.pack(*src),
            },
            Inst::Load { dst, addr } => Op::Load {
                dst: dst.index() as u32,
                addr: self.pack(*addr),
            },
            Inst::Store { addr, value } => Op::Store {
                addr: self.pack(*addr),
                value: self.pack(*value),
            },
            Inst::Alloc { dst, words } => Op::Alloc {
                dst: dst.index() as u32,
                words: self.pack(*words),
            },
            Inst::Call { dst, callee, args } => match module.function_by_name(callee) {
                None => self.trap(RunError::UnknownFunction(callee.clone())),
                Some(cid) => {
                    let args_start = self.call_args.len() as u32;
                    for a in args {
                        let packed = self.pack(*a);
                        self.call_args.push(packed);
                    }
                    Op::Call {
                        func: cid.0,
                        args_start,
                        args_len: args.len() as u32,
                        ret_dst: Self::pack_dst(*dst),
                    }
                }
            },
            Inst::Intrin { dst, which, args } => {
                let dst = Self::pack_dst(*dst);
                match which {
                    Intrinsic::Out => match args.first() {
                        Some(a) => Op::Out {
                            arg: self.pack(*a),
                            dst,
                        },
                        None => self.trap(RunError::BadIntrinsic("out needs one argument")),
                    },
                    Intrinsic::In => Op::In { dst },
                    Intrinsic::Rand => match args.first() {
                        Some(a) => Op::Rand {
                            arg: self.pack(*a),
                            dst,
                        },
                        None => self.trap(RunError::BadIntrinsic("rand needs an int bound")),
                    },
                    Intrinsic::Sqrt => match args.first() {
                        Some(a) => Op::Sqrt {
                            arg: self.pack(*a),
                            dst,
                        },
                        None => self.trap(RunError::BadIntrinsic("sqrt needs one argument")),
                    },
                }
            }
        }
    }

    fn decode_term(&mut self, term: &Term, block_pcs: &[u32]) -> Op {
        match term {
            Term::Br {
                cond,
                then_,
                else_,
                site,
            } => Op::Br {
                cond: self.pack(*cond),
                then_pc: block_pcs[then_.index()],
                else_pc: block_pcs[else_.index()],
                site: *site,
            },
            Term::Jmp { target } => Op::Jmp {
                target: block_pcs[target.index()],
                count: 1,
            },
            Term::Ret { value } => Op::Ret {
                value: value.map_or(NONE, |o| self.pack(o)),
            },
        }
    }
}

/// Mutable machine state borrowed by [`run`], split out field by field so
/// the op arena can stay immutably borrowed alongside it.
pub(crate) struct State<'a> {
    pub heap: &'a mut Vec<Value>,
    /// Logical heap size in words; the physical vector grows lazily
    /// towards it on store.
    pub heap_limit: usize,
    pub brk: &'a mut usize,
    pub input: &'a [Value],
    pub input_pos: &'a mut usize,
    pub output: &'a mut Vec<Value>,
    pub prng: &'a mut u64,
    /// Ascending input positions at which a new input segment begins.
    /// When the `in()` intrinsic is about to consume the element at
    /// `seg_bounds[k]`, the current branch-trace length is recorded as
    /// `seg_marks[k]` — that is where drift injected at the segment
    /// boundary first becomes visible. Empty for ordinary runs; bounds
    /// never reached are left unmarked (the caller pads them).
    pub seg_bounds: &'a [usize],
    /// Receives one trace-length mark per crossed segment bound.
    pub seg_marks: &'a mut Vec<usize>,
}

struct Frame {
    base: u32,
    ret_pc: u32,
    ret_dst: u32,
}

#[inline(always)]
fn rd(regs: &[Value], consts: &[Value], base: usize, o: u32) -> Value {
    if o & IMM_BIT != 0 {
        consts[(o & !IMM_BIT) as usize]
    } else {
        regs[base + o as usize]
    }
}

#[inline(always)]
fn addr_of(v: Value, limit: usize) -> Result<usize, RunError> {
    let a = v
        .as_int()
        .ok_or(RunError::TypeError("address must be an integer"))?;
    if a < 0 || a as usize >= limit {
        return Err(RunError::BadAddress(a));
    }
    Ok(a as usize)
}

/// Runs `funcs[fid](args)` to completion over the decoded module.
///
/// Bit-identical to the reference tree-walk: same step accounting (one
/// step per instruction and per terminator, checked against fuel before
/// executing), same trace events, same error conditions in the same
/// order. The lazily grown heap is observationally the old zero-filled
/// one — loads beyond the physical end yield `Int(0)`, exactly what the
/// eager fill stored there.
pub(crate) fn run(
    exec: &ExecModule,
    state: State<'_>,
    regs: &mut Vec<Value>,
    fid: usize,
    args: &[Value],
    fuel: u64,
    max_call_depth: usize,
) -> Result<Outcome, RunError> {
    let f = &exec.funcs[fid];
    if args.len() != f.n_params as usize {
        return Err(RunError::BadArgCount {
            got: args.len(),
            want: f.n_params as usize,
        });
    }
    regs.clear();
    regs.resize(f.n_regs as usize, Value::Int(0));
    regs[..args.len()].copy_from_slice(args);
    let mut frames = vec![Frame {
        base: 0,
        ret_pc: NONE,
        ret_dst: NONE,
    }];
    let mut base = 0usize;
    let mut pc = f.entry_pc as usize;

    let consts = &exec.consts[..];
    let ops = &exec.ops[..];
    let State {
        heap,
        heap_limit,
        brk,
        input,
        input_pos,
        output,
        prng,
        seg_bounds,
        seg_marks,
    } = state;

    let mut trace = Trace::new();
    let mut steps: u64 = 0;

    loop {
        steps += 1;
        if steps > fuel {
            return Err(RunError::OutOfFuel);
        }
        match &ops[pc] {
            Op::Const { dst, value } => {
                regs[base + *dst as usize] = *value;
                pc += 1;
            }
            Op::Copy { dst, src } => {
                regs[base + *dst as usize] = rd(regs, consts, base, *src);
                pc += 1;
            }
            Op::Bin { op, dst, lhs, rhs } => {
                let a = rd(regs, consts, base, *lhs);
                let b = rd(regs, consts, base, *rhs);
                regs[base + *dst as usize] = eval_bin(*op, a, b)?;
                pc += 1;
            }
            Op::Cmp { op, dst, lhs, rhs } => {
                let a = rd(regs, consts, base, *lhs);
                let b = rd(regs, consts, base, *rhs);
                regs[base + *dst as usize] = Value::Int(i64::from(eval_cmp(*op, a, b)?));
                pc += 1;
            }
            Op::Ftoi { dst, src } => {
                regs[base + *dst as usize] = match rd(regs, consts, base, *src) {
                    Value::Float(v) => Value::Int(v as i64),
                    v @ Value::Int(_) => v,
                };
                pc += 1;
            }
            Op::Itof { dst, src } => {
                regs[base + *dst as usize] = match rd(regs, consts, base, *src) {
                    Value::Int(v) => Value::Float(v as f64),
                    v @ Value::Float(_) => v,
                };
                pc += 1;
            }
            Op::Load { dst, addr } => {
                let a = addr_of(rd(regs, consts, base, *addr), heap_limit)?;
                regs[base + *dst as usize] = heap.get(a).copied().unwrap_or(Value::Int(0));
                pc += 1;
            }
            Op::Store { addr, value } => {
                let a = addr_of(rd(regs, consts, base, *addr), heap_limit)?;
                let v = rd(regs, consts, base, *value);
                if a >= heap.len() {
                    let grown = (a + 1).max(heap.len() * 2).min(heap_limit);
                    heap.resize(grown, Value::Int(0));
                }
                heap[a] = v;
                pc += 1;
            }
            Op::Alloc { dst, words } => {
                let w = rd(regs, consts, base, *words)
                    .as_int()
                    .ok_or(RunError::TypeError("alloc size must be an integer"))?;
                if w < 0 {
                    return Err(RunError::TypeError("alloc size must be non-negative"));
                }
                let start = *brk;
                let end = start.checked_add(w as usize).ok_or(RunError::OutOfMemory)?;
                if end > heap_limit {
                    return Err(RunError::OutOfMemory);
                }
                *brk = end;
                regs[base + *dst as usize] = Value::Int(start as i64);
                pc += 1;
            }
            Op::Call {
                func,
                args_start,
                args_len,
                ret_dst,
            } => {
                let cf = &exec.funcs[*func as usize];
                if frames.len() >= max_call_depth {
                    return Err(RunError::StackOverflow);
                }
                let nbase = regs.len();
                regs.resize(nbase + cf.n_regs as usize, Value::Int(0));
                let (caller, callee) = regs.split_at_mut(nbase);
                let packed = &exec.call_args[*args_start as usize..][..*args_len as usize];
                for (i, &a) in packed.iter().enumerate() {
                    callee[i] = rd(caller, consts, base, a);
                }
                frames.push(Frame {
                    base: nbase as u32,
                    ret_pc: (pc + 1) as u32,
                    ret_dst: *ret_dst,
                });
                base = nbase;
                pc = cf.entry_pc as usize;
            }
            Op::Out { arg, dst } => {
                let v = rd(regs, consts, base, *arg);
                output.push(v);
                if *dst != NONE {
                    regs[base + *dst as usize] = Value::Int(0);
                }
                pc += 1;
            }
            Op::In { dst } => {
                // Segment bookkeeping is off the hot path for ordinary
                // runs: `seg_bounds` is empty and the comparison fails on
                // the length check alone. Steps, fuel and the trace are
                // untouched, so segmented runs stay bit-identical.
                while seg_marks.len() < seg_bounds.len()
                    && *input_pos >= seg_bounds[seg_marks.len()]
                {
                    seg_marks.push(trace.len());
                }
                let v = if *input_pos < input.len() {
                    let v = input[*input_pos];
                    *input_pos += 1;
                    v
                } else {
                    Value::Int(-1)
                };
                if *dst != NONE {
                    regs[base + *dst as usize] = v;
                }
                pc += 1;
            }
            Op::Rand { arg, dst } => {
                let bound = rd(regs, consts, base, *arg)
                    .as_int()
                    .ok_or(RunError::BadIntrinsic("rand needs an int bound"))?;
                if bound <= 0 {
                    return Err(RunError::BadIntrinsic("rand bound must be positive"));
                }
                // xorshift64* — the same stream the reference produces.
                let mut x = *prng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *prng = x;
                let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
                if *dst != NONE {
                    regs[base + *dst as usize] = Value::Int((r % bound as u64) as i64);
                }
                pc += 1;
            }
            Op::Sqrt { arg, dst } => {
                let x = match rd(regs, consts, base, *arg) {
                    Value::Float(v) => v,
                    Value::Int(v) => v as f64,
                };
                if *dst != NONE {
                    regs[base + *dst as usize] = Value::Float(x.sqrt());
                }
                pc += 1;
            }
            Op::Trap { err } => {
                return Err(exec.traps[*err as usize].clone());
            }
            Op::Br {
                cond,
                then_pc,
                else_pc,
                site,
            } => {
                let taken = rd(regs, consts, base, *cond).is_truthy();
                trace.push(TraceEvent { site: *site, taken });
                pc = if taken { *then_pc } else { *else_pc } as usize;
            }
            Op::CmpBr {
                op,
                dst,
                lhs,
                rhs,
                then_pc,
                else_pc,
                site,
            } => {
                let a = rd(regs, consts, base, *lhs);
                let b = rd(regs, consts, base, *rhs);
                let taken = eval_cmp(*op, a, b)?;
                regs[base + *dst as usize] = Value::Int(i64::from(taken));
                // The branch is its own step, checked against fuel before
                // it runs — exactly as the unfused pair would.
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                trace.push(TraceEvent { site: *site, taken });
                pc = if taken { *then_pc } else { *else_pc } as usize;
            }
            Op::Jmp { target, count } => {
                // `count - 1` threaded jumps ride along; each was one step.
                steps += u64::from(*count) - 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                pc = *target as usize;
            }
            Op::BinBin {
                a_op,
                a_dst,
                a_lhs,
                a_rhs,
                b_op,
                b_dst,
                b_lhs,
                b_rhs,
            } => {
                let a = rd(regs, consts, base, *a_lhs);
                let b = rd(regs, consts, base, *a_rhs);
                regs[base + *a_dst as usize] = eval_bin(*a_op, a, b)?;
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let a = rd(regs, consts, base, *b_lhs);
                let b = rd(regs, consts, base, *b_rhs);
                regs[base + *b_dst as usize] = eval_bin(*b_op, a, b)?;
                pc += 2;
            }
            Op::BinLoad {
                op,
                dst,
                lhs,
                rhs,
                l_dst,
                l_addr,
            } => {
                let a = rd(regs, consts, base, *lhs);
                let b = rd(regs, consts, base, *rhs);
                regs[base + *dst as usize] = eval_bin(*op, a, b)?;
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let a = addr_of(rd(regs, consts, base, *l_addr), heap_limit)?;
                regs[base + *l_dst as usize] = heap.get(a).copied().unwrap_or(Value::Int(0));
                pc += 2;
            }
            Op::BinJmp {
                op,
                dst,
                lhs,
                rhs,
                target,
                count,
            } => {
                let a = rd(regs, consts, base, *lhs);
                let b = rd(regs, consts, base, *rhs);
                regs[base + *dst as usize] = eval_bin(*op, a, b)?;
                steps += u64::from(*count);
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                pc = *target as usize;
            }
            Op::CmpBin {
                c_op,
                c_dst,
                c_lhs,
                c_rhs,
                b_op,
                b_dst,
                b_lhs,
                b_rhs,
            } => {
                let a = rd(regs, consts, base, *c_lhs);
                let b = rd(regs, consts, base, *c_rhs);
                regs[base + *c_dst as usize] = Value::Int(i64::from(eval_cmp(*c_op, a, b)?));
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let a = rd(regs, consts, base, *b_lhs);
                let b = rd(regs, consts, base, *b_rhs);
                regs[base + *b_dst as usize] = eval_bin(*b_op, a, b)?;
                pc += 2;
            }
            Op::BinStore {
                op,
                dst,
                lhs,
                rhs,
                s_addr,
                s_value,
            } => {
                let a = rd(regs, consts, base, *lhs);
                let b = rd(regs, consts, base, *rhs);
                regs[base + *dst as usize] = eval_bin(*op, a, b)?;
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let a = addr_of(rd(regs, consts, base, *s_addr), heap_limit)?;
                let v = rd(regs, consts, base, *s_value);
                if a >= heap.len() {
                    let grown = (a + 1).max(heap.len() * 2).min(heap_limit);
                    heap.resize(grown, Value::Int(0));
                }
                heap[a] = v;
                pc += 2;
            }
            Op::BinBr {
                op,
                dst,
                lhs,
                rhs,
                cond,
                then_pc,
                else_pc,
                site,
            } => {
                let a = rd(regs, consts, base, *lhs);
                let b = rd(regs, consts, base, *rhs);
                regs[base + *dst as usize] = eval_bin(*op, a, b)?;
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let taken = rd(regs, consts, base, *cond).is_truthy();
                trace.push(TraceEvent { site: *site, taken });
                pc = if taken { *then_pc } else { *else_pc } as usize;
            }
            Op::LoadCmpBr {
                l_dst,
                l_addr,
                op,
                dst,
                lhs,
                rhs,
                then_pc,
                else_pc,
                site,
            } => {
                let a = addr_of(rd(regs, consts, base, *l_addr), heap_limit)?;
                regs[base + *l_dst as usize] = heap.get(a).copied().unwrap_or(Value::Int(0));
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let a = rd(regs, consts, base, *lhs);
                let b = rd(regs, consts, base, *rhs);
                let taken = eval_cmp(*op, a, b)?;
                regs[base + *dst as usize] = Value::Int(i64::from(taken));
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                trace.push(TraceEvent { site: *site, taken });
                pc = if taken { *then_pc } else { *else_pc } as usize;
            }
            Op::ConstConst {
                a_dst,
                a_value,
                b_dst,
                b_value,
            } => {
                regs[base + *a_dst as usize] = *a_value;
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                regs[base + *b_dst as usize] = *b_value;
                pc += 2;
            }
            Op::ConstJmp {
                dst,
                value,
                target,
                count,
            } => {
                regs[base + *dst as usize] = *value;
                steps += u64::from(*count);
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                pc = *target as usize;
            }
            Op::CopyCmpBr {
                dst,
                src,
                c_op,
                c_dst,
                c_lhs,
                c_rhs,
                then_pc,
                else_pc,
                site,
            } => {
                regs[base + *dst as usize] = rd(regs, consts, base, *src);
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let a = rd(regs, consts, base, *c_lhs);
                let b = rd(regs, consts, base, *c_rhs);
                let taken = eval_cmp(*c_op, a, b)?;
                regs[base + *c_dst as usize] = Value::Int(i64::from(taken));
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                trace.push(TraceEvent { site: *site, taken });
                pc = if taken { *then_pc } else { *else_pc } as usize;
            }
            Op::BinCmpBr {
                a_op,
                a_dst,
                a_lhs,
                a_rhs,
                c_op,
                c_dst,
                c_lhs,
                c_rhs,
                then_pc,
                else_pc,
                site,
            } => {
                let a = rd(regs, consts, base, *a_lhs);
                let b = rd(regs, consts, base, *a_rhs);
                regs[base + *a_dst as usize] = eval_bin(*a_op, a, b)?;
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let a = rd(regs, consts, base, *c_lhs);
                let b = rd(regs, consts, base, *c_rhs);
                let taken = eval_cmp(*c_op, a, b)?;
                regs[base + *c_dst as usize] = Value::Int(i64::from(taken));
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                trace.push(TraceEvent { site: *site, taken });
                pc = if taken { *then_pc } else { *else_pc } as usize;
            }
            Op::BinBinJmp {
                a_op,
                a_dst,
                a_lhs,
                a_rhs,
                b_op,
                b_dst,
                b_lhs,
                b_rhs,
                target,
                count,
            } => {
                let a = rd(regs, consts, base, *a_lhs);
                let b = rd(regs, consts, base, *a_rhs);
                regs[base + *a_dst as usize] = eval_bin(*a_op, a, b)?;
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let a = rd(regs, consts, base, *b_lhs);
                let b = rd(regs, consts, base, *b_rhs);
                regs[base + *b_dst as usize] = eval_bin(*b_op, a, b)?;
                steps += u64::from(*count);
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                pc = *target as usize;
            }
            Op::CmpBinBr {
                c_op,
                c_dst,
                c_lhs,
                c_rhs,
                b_op,
                b_dst,
                b_lhs,
                b_rhs,
                cond,
                then_pc,
                else_pc,
                site,
            } => {
                let a = rd(regs, consts, base, *c_lhs);
                let b = rd(regs, consts, base, *c_rhs);
                regs[base + *c_dst as usize] = Value::Int(i64::from(eval_cmp(*c_op, a, b)?));
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let a = rd(regs, consts, base, *b_lhs);
                let b = rd(regs, consts, base, *b_rhs);
                regs[base + *b_dst as usize] = eval_bin(*b_op, a, b)?;
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let taken = rd(regs, consts, base, *cond).is_truthy();
                trace.push(TraceEvent { site: *site, taken });
                pc = if taken { *then_pc } else { *else_pc } as usize;
            }
            Op::LoadCmpBin {
                l_dst,
                l_addr,
                c_op,
                c_dst,
                c_lhs,
                c_rhs,
                b_op,
                b_dst,
                b_lhs,
                b_rhs,
            } => {
                let a = addr_of(rd(regs, consts, base, *l_addr), heap_limit)?;
                regs[base + *l_dst as usize] = heap.get(a).copied().unwrap_or(Value::Int(0));
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let a = rd(regs, consts, base, *c_lhs);
                let b = rd(regs, consts, base, *c_rhs);
                regs[base + *c_dst as usize] = Value::Int(i64::from(eval_cmp(*c_op, a, b)?));
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let a = rd(regs, consts, base, *b_lhs);
                let b = rd(regs, consts, base, *b_rhs);
                regs[base + *b_dst as usize] = eval_bin(*b_op, a, b)?;
                pc += 3;
            }
            Op::Ret { value } => {
                let v = if *value == NONE {
                    None
                } else {
                    Some(rd(regs, consts, base, *value))
                };
                let finished = frames.pop().expect("frame stack never empty here");
                regs.truncate(finished.base as usize);
                match frames.last() {
                    None => {
                        return Ok(Outcome {
                            result: v,
                            trace,
                            steps,
                        });
                    }
                    Some(caller) => {
                        base = caller.base as usize;
                        if finished.ret_dst != NONE {
                            regs[base + finished.ret_dst as usize] = v.unwrap_or(Value::Int(0));
                        }
                        pc = finished.ret_pc as usize;
                    }
                }
            }
        }
    }
}
