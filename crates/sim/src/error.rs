//! Runtime errors.

use std::error::Error;
use std::fmt;

/// An error raised while executing a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The requested entry function does not exist.
    UnknownFunction(String),
    /// Wrong number of arguments for the entry function.
    BadArgCount {
        /// Arguments supplied.
        got: usize,
        /// Parameters expected.
        want: usize,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// A load/store address was negative or beyond the heap.
    BadAddress(i64),
    /// `alloc` exhausted the heap.
    OutOfMemory,
    /// The call stack exceeded the configured depth.
    StackOverflow,
    /// The instruction budget was exhausted.
    OutOfFuel,
    /// An operation received a value of the wrong kind (e.g. bitwise ops on
    /// floats, float/int mix in arithmetic).
    TypeError(&'static str),
    /// An intrinsic received malformed arguments.
    BadIntrinsic(&'static str),
    /// The module's global segment does not fit in the configured heap.
    GlobalsExceedHeap {
        /// Words the module's globals need.
        globals: usize,
        /// Words the configuration provides.
        heap_words: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownFunction(name) => write!(f, "unknown function {name:?}"),
            RunError::BadArgCount { got, want } => {
                write!(f, "entry called with {got} args, expected {want}")
            }
            RunError::DivisionByZero => write!(f, "integer division by zero"),
            RunError::BadAddress(a) => write!(f, "memory access out of bounds at {a}"),
            RunError::OutOfMemory => write!(f, "heap exhausted"),
            RunError::StackOverflow => write!(f, "call stack overflow"),
            RunError::OutOfFuel => write!(f, "instruction budget exhausted"),
            RunError::TypeError(what) => write!(f, "type error: {what}"),
            RunError::BadIntrinsic(what) => write!(f, "bad intrinsic use: {what}"),
            RunError::GlobalsExceedHeap {
                globals,
                heap_words,
            } => write!(
                f,
                "module needs {globals} global words but the heap holds {heap_words}"
            ),
        }
    }
}

impl Error for RunError {}
