//! Arithmetic shared by the pre-decoded executor and the reference
//! interpreter — one definition so the two engines cannot drift.

use brepl_ir::{BinOp, CmpOp, Value};

use crate::error::RunError;

pub(crate) fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, RunError> {
    use BinOp::*;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => {
            let v = match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(RunError::DivisionByZero);
                    }
                    x.wrapping_div(y)
                }
                Rem => {
                    if y == 0 {
                        return Err(RunError::DivisionByZero);
                    }
                    x.wrapping_rem(y)
                }
                And => x & y,
                Or => x | y,
                Xor => x ^ y,
                Shl => x.wrapping_shl(y as u32 & 63),
                Shr => x.wrapping_shr(y as u32 & 63),
            };
            Ok(Value::Int(v))
        }
        (Value::Float(x), Value::Float(y)) => {
            let v = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Rem => x % y,
                And | Or | Xor | Shl | Shr => {
                    return Err(RunError::TypeError("bitwise op on floats"))
                }
            };
            Ok(Value::Float(v))
        }
        _ => Err(RunError::TypeError("mixed int/float arithmetic")),
    }
}

pub(crate) fn eval_cmp(op: CmpOp, a: Value, b: Value) -> Result<bool, RunError> {
    use CmpOp::*;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(match op {
            Eq => x == y,
            Ne => x != y,
            Lt => x < y,
            Le => x <= y,
            Gt => x > y,
            Ge => x >= y,
        }),
        (Value::Float(x), Value::Float(y)) => Ok(match op {
            Eq => x == y,
            Ne => x != y,
            Lt => x < y,
            Le => x <= y,
            Gt => x > y,
            Ge => x >= y,
        }),
        _ => Err(RunError::TypeError("mixed int/float comparison")),
    }
}
