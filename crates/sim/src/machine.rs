//! The interpreter proper: a machine bound to a pre-decoded module.

use brepl_ir::{Module, Value};
use brepl_trace::Trace;

use crate::error::RunError;
use crate::exec::{self, ExecModule};

/// Execution limits and seeds.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Heap size in words (globals + allocations). This is the *logical*
    /// size — physical memory is only committed as the program stores.
    pub heap_words: usize,
    /// Maximum number of executed instructions (terminators included).
    pub fuel: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Seed for the deterministic `rand` intrinsic.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            heap_words: 1 << 22,
            fuel: 500_000_000,
            max_call_depth: 10_000,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// The result of a successful run.
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome {
    /// The entry function's return value.
    pub result: Option<Value>,
    /// The branch trace of the whole execution.
    pub trace: Trace,
    /// Instructions executed.
    pub steps: u64,
}

/// An interpreter instance bound to one module.
///
/// Construction pre-decodes the module into a flat executable form (see
/// `exec`), so repeated runs pay the decode once. The heap is lazily
/// grown: [`RunConfig::heap_words`] bounds addresses, but physical memory
/// is committed only as far as the program actually stores — a load
/// beyond the committed end yields `Int(0)`, exactly what a zero-filled
/// heap would hold there.
///
/// The machine owns the heap and the I/O tapes; a fresh machine (or
/// [`Machine::reset`]) gives a fresh program state, so two runs with the
/// same inputs are bit-identical — profiles are deterministic.
pub struct Machine<'m> {
    module: &'m Module,
    exec: ExecModule,
    heap: Vec<Value>,
    brk: usize,
    input: Vec<Value>,
    input_pos: usize,
    output: Vec<Value>,
    prng: u64,
    config: RunConfig,
    /// Register stack shared by all call frames, reused across runs.
    regs: Vec<Value>,
}

impl<'m> Machine<'m> {
    /// Creates a machine for `module`, pre-decoding it for execution.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::GlobalsExceedHeap`] if the module's global
    /// segment does not fit in the configured heap.
    pub fn new(module: &'m Module, config: RunConfig) -> Result<Self, RunError> {
        if module.globals > config.heap_words {
            return Err(RunError::GlobalsExceedHeap {
                globals: module.globals,
                heap_words: config.heap_words,
            });
        }
        Ok(Machine {
            module,
            exec: ExecModule::decode(module),
            heap: Vec::new(),
            brk: module.globals,
            input: Vec::new(),
            input_pos: 0,
            output: Vec::new(),
            prng: config.seed | 1,
            config,
            regs: Vec::new(),
        })
    }

    /// Replaces the input tape consumed by the `in()` intrinsic.
    pub fn set_input(&mut self, input: Vec<Value>) {
        self.input = input;
        self.input_pos = 0;
    }

    /// The values written by the `out()` intrinsic so far.
    pub fn output(&self) -> &[Value] {
        &self.output
    }

    /// Resets the machine to its initial state: heap and output are
    /// cleared, the allocation break and PRNG are reseeded, and the input
    /// tape is *rewound but kept*, so a re-run re-consumes the same input
    /// and reproduces the first run bit for bit.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.brk = self.module.globals;
        self.input_pos = 0;
        self.output.clear();
        self.prng = self.config.seed | 1;
    }

    /// Runs `entry(args)` to completion, recording every conditional branch.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on traps (division by zero, bad address,
    /// fuel/stack exhaustion, type errors) or if `entry` is unknown.
    pub fn run(&mut self, entry: &str, args: &[Value]) -> Result<Outcome, RunError> {
        let mut marks = Vec::new();
        self.run_inner(entry, args, &[], &mut marks)
    }

    /// Runs `entry(args)` like [`Machine::run`], additionally recording
    /// where each input-segment boundary falls in the branch trace.
    ///
    /// `bounds` are ascending input positions at which a new segment
    /// begins; the returned marks give, for each bound, the trace length
    /// at the moment the `in()` intrinsic first reached that position.
    /// `marks[k-1]..marks[k]` (with the final bound closed by the total
    /// trace length) is therefore exactly the slice of branch events
    /// driven by segment `k`'s input — the unit the re-specialization
    /// layer observes. Bounds the program never consumed up to are padded
    /// with the final trace length, so the result always has one mark per
    /// bound. The execution itself (steps, fuel, trace, output) is
    /// bit-identical to [`Machine::run`] on the same input.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Machine::run`].
    pub fn run_segmented(
        &mut self,
        entry: &str,
        args: &[Value],
        bounds: &[usize],
    ) -> Result<(Outcome, Vec<usize>), RunError> {
        let mut marks = Vec::with_capacity(bounds.len());
        let outcome = self.run_inner(entry, args, bounds, &mut marks)?;
        while marks.len() < bounds.len() {
            marks.push(outcome.trace.len());
        }
        Ok((outcome, marks))
    }

    fn run_inner(
        &mut self,
        entry: &str,
        args: &[Value],
        seg_bounds: &[usize],
        seg_marks: &mut Vec<usize>,
    ) -> Result<Outcome, RunError> {
        let fid = self
            .module
            .function_by_name(entry)
            .ok_or_else(|| RunError::UnknownFunction(entry.to_string()))?;
        let state = exec::State {
            heap: &mut self.heap,
            heap_limit: self.config.heap_words,
            brk: &mut self.brk,
            input: &self.input,
            input_pos: &mut self.input_pos,
            output: &mut self.output,
            prng: &mut self.prng,
            seg_bounds,
            seg_marks,
        };
        exec::run(
            &self.exec,
            state,
            &mut self.regs,
            fid.index(),
            args,
            self.config.fuel,
            self.config.max_call_depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Module, Operand};

    fn run_module(m: &Module, entry: &str, args: &[Value]) -> Result<Outcome, RunError> {
        Machine::new(m, RunConfig::default())
            .unwrap()
            .run(entry, args)
    }

    fn simple_main(build: impl FnOnce(&mut FunctionBuilder)) -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        build(&mut b);
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn arithmetic_and_return() {
        let m = simple_main(|b| {
            let x = b.iconst(6);
            let y = b.reg();
            b.mul(y, x.into(), Operand::imm(7));
            b.ret(Some(y.into()));
        });
        let out = run_module(&m, "main", &[]).unwrap();
        assert_eq!(out.result, Some(Value::Int(42)));
        assert!(out.trace.is_empty());
    }

    #[test]
    fn float_arithmetic() {
        let m = simple_main(|b| {
            let x = b.reg();
            b.const_float(x, 2.0);
            let y = b.reg();
            b.div(y, Operand::fimm(1.0), x.into());
            let s = b.reg();
            b.intrin(Some(s), brepl_ir::Intrinsic::Sqrt, vec![Operand::fimm(9.0)]);
            let z = b.reg();
            b.add(z, y.into(), s.into());
            b.ret(Some(z.into()));
        });
        let out = run_module(&m, "main", &[]).unwrap();
        assert_eq!(out.result, Some(Value::Float(3.5)));
    }

    #[test]
    fn loop_traces_branches() {
        let m = simple_main(|b| {
            let i = b.reg();
            b.const_int(i, 0);
            let head = b.new_block();
            let body = b.new_block();
            let done = b.new_block();
            b.jmp(head);
            b.switch_to(head);
            let c = b.lt(i.into(), Operand::imm(5));
            b.br(c, body, done);
            b.switch_to(body);
            b.add(i, i.into(), Operand::imm(1));
            b.jmp(head);
            b.switch_to(done);
            b.ret(Some(i.into()));
        });
        let out = run_module(&m, "main", &[]).unwrap();
        assert_eq!(out.result, Some(Value::Int(5)));
        assert_eq!(out.trace.len(), 6);
        let dirs: Vec<bool> = out.trace.iter().map(|e| e.taken).collect();
        assert_eq!(dirs, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn calls_and_recursion() {
        // fib(n) recursive.
        let mut fb = FunctionBuilder::new("fib", 1);
        let n = fb.param(0);
        let rec = fb.new_block();
        let base = fb.new_block();
        let c = fb.lt(n.into(), Operand::imm(2));
        fb.br(c, base, rec);
        fb.switch_to(base);
        fb.ret(Some(n.into()));
        fb.switch_to(rec);
        let a = fb.reg();
        let b_ = fb.reg();
        let n1 = fb.reg();
        let n2 = fb.reg();
        fb.sub(n1, n.into(), Operand::imm(1));
        fb.sub(n2, n.into(), Operand::imm(2));
        fb.call(Some(a), "fib", vec![n1.into()]);
        fb.call(Some(b_), "fib", vec![n2.into()]);
        let s = fb.reg();
        fb.add(s, a.into(), b_.into());
        fb.ret(Some(s.into()));

        let mut mb = FunctionBuilder::new("main", 0);
        let r = mb.reg();
        mb.call(Some(r), "fib", vec![Operand::imm(10)]);
        mb.ret(Some(r.into()));

        let mut m = Module::new();
        m.push_function(fb.finish());
        m.push_function(mb.finish());
        let out = run_module(&m, "main", &[]).unwrap();
        assert_eq!(out.result, Some(Value::Int(55)));
        assert!(out.trace.len() > 100);
    }

    #[test]
    fn memory_and_io() {
        let m = simple_main(|b| {
            let base = b.reg();
            b.alloc(base, Operand::imm(4));
            b.store(base.into(), Operand::imm(11));
            let v = b.reg();
            b.load(v, base.into());
            b.out(v.into());
            let inp = b.input();
            b.out(inp.into());
            let empty = b.input();
            b.out(empty.into());
            b.ret(None);
        });
        let mut machine = Machine::new(&m, RunConfig::default()).unwrap();
        machine.set_input(vec![Value::Int(99)]);
        machine.run("main", &[]).unwrap();
        assert_eq!(
            machine.output(),
            &[Value::Int(11), Value::Int(99), Value::Int(-1)]
        );
    }

    #[test]
    fn rand_is_deterministic() {
        let m = simple_main(|b| {
            let r = b.rand(Operand::imm(1000));
            b.ret(Some(r.into()));
        });
        let a = run_module(&m, "main", &[]).unwrap().result;
        let b_ = run_module(&m, "main", &[]).unwrap().result;
        assert_eq!(a, b_);
    }

    #[test]
    fn traps() {
        let div = simple_main(|b| {
            let x = b.reg();
            b.div(x, Operand::imm(1), Operand::imm(0));
            b.ret(None);
        });
        assert_eq!(
            run_module(&div, "main", &[]).unwrap_err(),
            RunError::DivisionByZero
        );

        let bad_addr = simple_main(|b| {
            let x = b.reg();
            b.load(x, Operand::imm(-1));
            b.ret(None);
        });
        assert_eq!(
            run_module(&bad_addr, "main", &[]).unwrap_err(),
            RunError::BadAddress(-1)
        );

        let spin = simple_main(|b| {
            let head = b.new_block();
            b.jmp(head);
            b.switch_to(head);
            b.jmp(head);
        });
        let mut machine = Machine::new(
            &spin,
            RunConfig {
                fuel: 1000,
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(machine.run("main", &[]).unwrap_err(), RunError::OutOfFuel);
    }

    #[test]
    fn stack_overflow_detected() {
        let mut fb = FunctionBuilder::new("f", 0);
        fb.call(None, "f", vec![]);
        fb.ret(None);
        let mut m = Module::new();
        m.push_function(fb.finish());
        let err = Machine::new(
            &m,
            RunConfig {
                max_call_depth: 64,
                ..RunConfig::default()
            },
        )
        .unwrap()
        .run("f", &[])
        .unwrap_err();
        assert_eq!(err, RunError::StackOverflow);
    }

    #[test]
    fn unknown_entry_and_arity() {
        let m = simple_main(|b| b.ret(None));
        assert!(matches!(
            run_module(&m, "nope", &[]).unwrap_err(),
            RunError::UnknownFunction(_)
        ));
        assert!(matches!(
            run_module(&m, "main", &[Value::Int(1)]).unwrap_err(),
            RunError::BadArgCount { .. }
        ));
    }

    #[test]
    fn globals_exceeding_heap_is_a_typed_error() {
        let mut m = simple_main(|b| b.ret(None));
        m.globals = 64;
        let err = Machine::new(
            &m,
            RunConfig {
                heap_words: 32,
                ..RunConfig::default()
            },
        )
        .err()
        .expect("construction must fail");
        assert_eq!(
            err,
            RunError::GlobalsExceedHeap {
                globals: 64,
                heap_words: 32
            }
        );
    }

    #[test]
    fn lazy_heap_matches_zero_filled_semantics() {
        // Load far beyond anything stored: a zero-filled heap holds
        // Int(0) there, and so must the lazily committed one. Stores past
        // the logical limit still trap.
        let m = simple_main(|b| {
            let v = b.reg();
            b.load(v, Operand::imm(1000));
            b.out(v.into());
            b.store(Operand::imm(500), Operand::imm(7));
            let w = b.reg();
            b.load(w, Operand::imm(500));
            b.out(w.into());
            b.ret(None);
        });
        let mut machine = Machine::new(
            &m,
            RunConfig {
                heap_words: 1024,
                ..RunConfig::default()
            },
        )
        .unwrap();
        machine.run("main", &[]).unwrap();
        assert_eq!(machine.output(), &[Value::Int(0), Value::Int(7)]);

        let oob = simple_main(|b| {
            b.store(Operand::imm(1024), Operand::imm(1));
            b.ret(None);
        });
        let err = Machine::new(
            &oob,
            RunConfig {
                heap_words: 1024,
                ..RunConfig::default()
            },
        )
        .unwrap()
        .run("main", &[])
        .unwrap_err();
        assert_eq!(err, RunError::BadAddress(1024));
    }

    #[test]
    fn reset_restores_initial_state() {
        let m = simple_main(|b| {
            let r = b.rand(Operand::imm(1_000_000));
            b.out(r.into());
            b.store(Operand::imm(0), Operand::imm(5));
            b.ret(None);
        });
        let mut machine = Machine::new(&m, RunConfig::default()).unwrap();
        machine.run("main", &[]).unwrap();
        let first = machine.output().to_vec();
        machine.reset();
        machine.run("main", &[]).unwrap();
        assert_eq!(machine.output(), &first[..]);
    }

    #[test]
    fn segmented_runs_mark_boundaries_and_stay_bit_identical() {
        // Loop of 10 iterations; each reads one input and branches on it,
        // so every iteration contributes exactly two trace events (loop
        // head + data branch) and consumes exactly one input element.
        let m = simple_main(|b| {
            let i = b.reg();
            let head = b.new_block();
            let body = b.new_block();
            let t = b.new_block();
            let f = b.new_block();
            let latch = b.new_block();
            let exit = b.new_block();
            b.const_int(i, 0);
            b.jmp(head);
            b.switch_to(head);
            let more = b.lt(i.into(), Operand::imm(10));
            b.br(more, body, exit);
            b.switch_to(body);
            let v = b.input();
            let one = b.eq(v.into(), Operand::imm(1));
            b.br(one, t, f);
            b.switch_to(t);
            b.jmp(latch);
            b.switch_to(f);
            b.jmp(latch);
            b.switch_to(latch);
            b.add(i, i.into(), Operand::imm(1));
            b.jmp(head);
            b.switch_to(exit);
            b.ret(None);
        });
        let input: Vec<Value> = (0..10).map(|k| Value::Int(k % 2)).collect();

        let mut plain = Machine::new(&m, RunConfig::default()).unwrap();
        plain.set_input(input.clone());
        let want = plain.run("main", &[]).unwrap();

        let mut seg = Machine::new(&m, RunConfig::default()).unwrap();
        seg.set_input(input.clone());
        let (got, marks) = seg.run_segmented("main", &[], &[4, 7]).unwrap();
        // Iteration k's `in()` happens after 2k+1 trace events.
        assert_eq!(marks, vec![9, 15]);
        assert_eq!(got, want, "segmented run must be bit-identical");

        // A bound at position 0 marks before any input is consumed; a
        // bound past the tape is padded with the final trace length.
        let mut seg = Machine::new(&m, RunConfig::default()).unwrap();
        seg.set_input(input);
        let (got, marks) = seg.run_segmented("main", &[], &[0, 4, 100]).unwrap();
        assert_eq!(marks, vec![1, 9, got.trace.len()]);
        assert_eq!(got.trace.len(), 21);
    }

    #[test]
    fn reset_rewinds_the_input_tape() {
        // One run consumes the tape; after reset the same machine must
        // re-consume the same input and reproduce the run exactly.
        let m = simple_main(|b| {
            let a = b.input();
            let b_ = b.input();
            b.out(a.into());
            b.out(b_.into());
            b.ret(None);
        });
        let mut machine = Machine::new(&m, RunConfig::default()).unwrap();
        machine.set_input(vec![Value::Int(3), Value::Int(9)]);
        let first = machine.run("main", &[]).unwrap();
        let first_out = machine.output().to_vec();
        assert_eq!(first_out, vec![Value::Int(3), Value::Int(9)]);
        machine.reset();
        let second = machine.run("main", &[]).unwrap();
        assert_eq!(machine.output(), &first_out[..]);
        assert_eq!(first, second);
    }
}
