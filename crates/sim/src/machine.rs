//! The interpreter proper.

use brepl_ir::{BinOp, BlockId, CmpOp, FuncId, Inst, Intrinsic, Module, Operand, Term, Value};
use brepl_trace::{Trace, TraceEvent};

use crate::error::RunError;

/// Execution limits and seeds.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Heap size in words (globals + allocations).
    pub heap_words: usize,
    /// Maximum number of executed instructions (terminators included).
    pub fuel: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Seed for the deterministic `rand` intrinsic.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            heap_words: 1 << 22,
            fuel: 500_000_000,
            max_call_depth: 10_000,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// The result of a successful run.
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome {
    /// The entry function's return value.
    pub result: Option<Value>,
    /// The branch trace of the whole execution.
    pub trace: Trace,
    /// Instructions executed.
    pub steps: u64,
}

struct Frame {
    func: FuncId,
    block: BlockId,
    inst_idx: usize,
    regs: Vec<Value>,
    ret_dst: Option<brepl_ir::Reg>,
}

/// An interpreter instance bound to one module.
///
/// The machine owns the heap and the I/O tapes; a fresh machine (or
/// [`Machine::reset`]) gives a fresh program state, so two runs with the
/// same inputs are bit-identical — profiles are deterministic.
pub struct Machine<'m> {
    module: &'m Module,
    heap: Vec<Value>,
    brk: usize,
    input: Vec<Value>,
    input_pos: usize,
    output: Vec<Value>,
    prng: u64,
    config: RunConfig,
}

impl<'m> Machine<'m> {
    /// Creates a machine for `module`.
    ///
    /// # Panics
    ///
    /// Panics if the module's global segment does not fit in the heap.
    pub fn new(module: &'m Module, config: RunConfig) -> Self {
        assert!(
            module.globals <= config.heap_words,
            "globals exceed heap size"
        );
        Machine {
            module,
            heap: vec![Value::Int(0); config.heap_words],
            brk: module.globals,
            input: Vec::new(),
            input_pos: 0,
            output: Vec::new(),
            prng: config.seed | 1,
            config,
        }
    }

    /// Replaces the input tape consumed by the `in()` intrinsic.
    pub fn set_input(&mut self, input: Vec<Value>) {
        self.input = input;
        self.input_pos = 0;
    }

    /// The values written by the `out()` intrinsic so far.
    pub fn output(&self) -> &[Value] {
        &self.output
    }

    /// Clears heap, tapes and PRNG back to the initial state.
    pub fn reset(&mut self) {
        self.heap.fill(Value::Int(0));
        self.brk = self.module.globals;
        self.input_pos = 0;
        self.output.clear();
        self.prng = self.config.seed | 1;
    }

    fn rand_next(&mut self) -> u64 {
        // xorshift64* — deterministic, seedable, good enough for workloads.
        let mut x = self.prng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.prng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Runs `entry(args)` to completion, recording every conditional branch.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on traps (division by zero, bad address,
    /// fuel/stack exhaustion, type errors) or if `entry` is unknown.
    pub fn run(&mut self, entry: &str, args: &[Value]) -> Result<Outcome, RunError> {
        let fid = self
            .module
            .function_by_name(entry)
            .ok_or_else(|| RunError::UnknownFunction(entry.to_string()))?;
        let f = self.module.function(fid);
        if args.len() != f.n_params as usize {
            return Err(RunError::BadArgCount {
                got: args.len(),
                want: f.n_params as usize,
            });
        }
        let mut regs = vec![Value::Int(0); f.n_regs as usize];
        regs[..args.len()].copy_from_slice(args);
        let mut frames = vec![Frame {
            func: fid,
            block: f.entry,
            inst_idx: 0,
            regs,
            ret_dst: None,
        }];

        let mut trace = Trace::new();
        let mut steps: u64 = 0;
        let fuel = self.config.fuel;

        'run: loop {
            let frame = frames.last_mut().expect("frame stack never empty here");
            let func = self.module.function(frame.func);
            let block = func.block(frame.block);

            // Straight-line portion.
            while frame.inst_idx < block.insts.len() {
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let inst = &block.insts[frame.inst_idx];
                frame.inst_idx += 1;
                match inst {
                    Inst::Const { dst, value } => frame.regs[dst.index()] = *value,
                    Inst::Copy { dst, src } => frame.regs[dst.index()] = read(&frame.regs, *src),
                    Inst::Bin { op, dst, lhs, rhs } => {
                        let a = read(&frame.regs, *lhs);
                        let b = read(&frame.regs, *rhs);
                        frame.regs[dst.index()] = eval_bin(*op, a, b)?;
                    }
                    Inst::Cmp { op, dst, lhs, rhs } => {
                        let a = read(&frame.regs, *lhs);
                        let b = read(&frame.regs, *rhs);
                        frame.regs[dst.index()] = Value::Int(i64::from(eval_cmp(*op, a, b)?));
                    }
                    Inst::Ftoi { dst, src } => {
                        frame.regs[dst.index()] = match read(&frame.regs, *src) {
                            Value::Float(v) => Value::Int(v as i64),
                            v @ Value::Int(_) => v,
                        }
                    }
                    Inst::Itof { dst, src } => {
                        frame.regs[dst.index()] = match read(&frame.regs, *src) {
                            Value::Int(v) => Value::Float(v as f64),
                            v @ Value::Float(_) => v,
                        }
                    }
                    Inst::Load { dst, addr } => {
                        let a = addr_of(read(&frame.regs, *addr), self.heap.len())?;
                        frame.regs[dst.index()] = self.heap[a];
                    }
                    Inst::Store { addr, value } => {
                        let a = addr_of(read(&frame.regs, *addr), self.heap.len())?;
                        self.heap[a] = read(&frame.regs, *value);
                    }
                    Inst::Alloc { dst, words } => {
                        let w = read(&frame.regs, *words)
                            .as_int()
                            .ok_or(RunError::TypeError("alloc size must be an integer"))?;
                        if w < 0 {
                            return Err(RunError::TypeError("alloc size must be non-negative"));
                        }
                        let base = self.brk;
                        let end = base.checked_add(w as usize).ok_or(RunError::OutOfMemory)?;
                        if end > self.heap.len() {
                            return Err(RunError::OutOfMemory);
                        }
                        self.brk = end;
                        frame.regs[dst.index()] = Value::Int(base as i64);
                    }
                    Inst::Call { dst, callee, args } => {
                        let cid = self
                            .module
                            .function_by_name(callee)
                            .ok_or_else(|| RunError::UnknownFunction(callee.clone()))?;
                        let cf = self.module.function(cid);
                        let mut cregs = vec![Value::Int(0); cf.n_regs as usize];
                        for (i, a) in args.iter().enumerate() {
                            cregs[i] = read(&frame.regs, *a);
                        }
                        let ret_dst = *dst;
                        let entry = cf.entry;
                        if frames.len() >= self.config.max_call_depth {
                            return Err(RunError::StackOverflow);
                        }
                        frames.push(Frame {
                            func: cid,
                            block: entry,
                            inst_idx: 0,
                            regs: cregs,
                            ret_dst,
                        });
                        continue 'run;
                    }
                    Inst::Intrin { dst, which, args } => {
                        let argv: Vec<Value> = args.iter().map(|a| read(&frame.regs, *a)).collect();
                        let result = match which {
                            Intrinsic::Out => {
                                let v = *argv
                                    .first()
                                    .ok_or(RunError::BadIntrinsic("out needs one argument"))?;
                                self.output.push(v);
                                Value::Int(0)
                            }
                            Intrinsic::In => {
                                if self.input_pos < self.input.len() {
                                    let v = self.input[self.input_pos];
                                    self.input_pos += 1;
                                    v
                                } else {
                                    Value::Int(-1)
                                }
                            }
                            Intrinsic::Rand => {
                                let bound = argv
                                    .first()
                                    .and_then(|v| v.as_int())
                                    .ok_or(RunError::BadIntrinsic("rand needs an int bound"))?;
                                if bound <= 0 {
                                    return Err(RunError::BadIntrinsic(
                                        "rand bound must be positive",
                                    ));
                                }
                                Value::Int((self.rand_next() % bound as u64) as i64)
                            }
                            Intrinsic::Sqrt => {
                                let x = match argv.first() {
                                    Some(Value::Float(v)) => *v,
                                    Some(Value::Int(v)) => *v as f64,
                                    None => {
                                        return Err(RunError::BadIntrinsic(
                                            "sqrt needs one argument",
                                        ))
                                    }
                                };
                                Value::Float(x.sqrt())
                            }
                        };
                        if let Some(d) = dst {
                            frame.regs[d.index()] = result;
                        }
                    }
                }
            }

            // Terminator.
            steps += 1;
            if steps > fuel {
                return Err(RunError::OutOfFuel);
            }
            match &block.term {
                Term::Br {
                    cond,
                    then_,
                    else_,
                    site,
                } => {
                    let taken = read(&frame.regs, *cond).is_truthy();
                    trace.push(TraceEvent { site: *site, taken });
                    frame.block = if taken { *then_ } else { *else_ };
                    frame.inst_idx = 0;
                }
                Term::Jmp { target } => {
                    frame.block = *target;
                    frame.inst_idx = 0;
                }
                Term::Ret { value } => {
                    let v = value.map(|o| read(&frame.regs, o));
                    let finished = frames.pop().expect("frame stack never empty here");
                    match frames.last_mut() {
                        None => {
                            return Ok(Outcome {
                                result: v,
                                trace,
                                steps,
                            });
                        }
                        Some(caller) => {
                            if let Some(d) = finished.ret_dst {
                                caller.regs[d.index()] = v.unwrap_or(Value::Int(0));
                            }
                        }
                    }
                }
            }
        }
    }
}

fn read(regs: &[Value], op: Operand) -> Value {
    match op {
        Operand::Reg(r) => regs[r.index()],
        Operand::Imm(v) => v,
    }
}

fn addr_of(v: Value, heap_len: usize) -> Result<usize, RunError> {
    let a = v
        .as_int()
        .ok_or(RunError::TypeError("address must be an integer"))?;
    if a < 0 || a as usize >= heap_len {
        return Err(RunError::BadAddress(a));
    }
    Ok(a as usize)
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, RunError> {
    use BinOp::*;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => {
            let v = match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(RunError::DivisionByZero);
                    }
                    x.wrapping_div(y)
                }
                Rem => {
                    if y == 0 {
                        return Err(RunError::DivisionByZero);
                    }
                    x.wrapping_rem(y)
                }
                And => x & y,
                Or => x | y,
                Xor => x ^ y,
                Shl => x.wrapping_shl(y as u32 & 63),
                Shr => x.wrapping_shr(y as u32 & 63),
            };
            Ok(Value::Int(v))
        }
        (Value::Float(x), Value::Float(y)) => {
            let v = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Rem => x % y,
                And | Or | Xor | Shl | Shr => {
                    return Err(RunError::TypeError("bitwise op on floats"))
                }
            };
            Ok(Value::Float(v))
        }
        _ => Err(RunError::TypeError("mixed int/float arithmetic")),
    }
}

fn eval_cmp(op: CmpOp, a: Value, b: Value) -> Result<bool, RunError> {
    use CmpOp::*;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(match op {
            Eq => x == y,
            Ne => x != y,
            Lt => x < y,
            Le => x <= y,
            Gt => x > y,
            Ge => x >= y,
        }),
        (Value::Float(x), Value::Float(y)) => Ok(match op {
            Eq => x == y,
            Ne => x != y,
            Lt => x < y,
            Le => x <= y,
            Gt => x > y,
            Ge => x >= y,
        }),
        _ => Err(RunError::TypeError("mixed int/float comparison")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Module, Operand};

    fn run_module(m: &Module, entry: &str, args: &[Value]) -> Result<Outcome, RunError> {
        Machine::new(m, RunConfig::default()).run(entry, args)
    }

    fn simple_main(build: impl FnOnce(&mut FunctionBuilder)) -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        build(&mut b);
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn arithmetic_and_return() {
        let m = simple_main(|b| {
            let x = b.iconst(6);
            let y = b.reg();
            b.mul(y, x.into(), Operand::imm(7));
            b.ret(Some(y.into()));
        });
        let out = run_module(&m, "main", &[]).unwrap();
        assert_eq!(out.result, Some(Value::Int(42)));
        assert!(out.trace.is_empty());
    }

    #[test]
    fn float_arithmetic() {
        let m = simple_main(|b| {
            let x = b.reg();
            b.const_float(x, 2.0);
            let y = b.reg();
            b.div(y, Operand::fimm(1.0), x.into());
            let s = b.reg();
            b.intrin(Some(s), brepl_ir::Intrinsic::Sqrt, vec![Operand::fimm(9.0)]);
            let z = b.reg();
            b.add(z, y.into(), s.into());
            b.ret(Some(z.into()));
        });
        let out = run_module(&m, "main", &[]).unwrap();
        assert_eq!(out.result, Some(Value::Float(3.5)));
    }

    #[test]
    fn loop_traces_branches() {
        let m = simple_main(|b| {
            let i = b.reg();
            b.const_int(i, 0);
            let head = b.new_block();
            let body = b.new_block();
            let done = b.new_block();
            b.jmp(head);
            b.switch_to(head);
            let c = b.lt(i.into(), Operand::imm(5));
            b.br(c, body, done);
            b.switch_to(body);
            b.add(i, i.into(), Operand::imm(1));
            b.jmp(head);
            b.switch_to(done);
            b.ret(Some(i.into()));
        });
        let out = run_module(&m, "main", &[]).unwrap();
        assert_eq!(out.result, Some(Value::Int(5)));
        assert_eq!(out.trace.len(), 6);
        let dirs: Vec<bool> = out.trace.iter().map(|e| e.taken).collect();
        assert_eq!(dirs, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn calls_and_recursion() {
        // fib(n) recursive.
        let mut fb = FunctionBuilder::new("fib", 1);
        let n = fb.param(0);
        let rec = fb.new_block();
        let base = fb.new_block();
        let c = fb.lt(n.into(), Operand::imm(2));
        fb.br(c, base, rec);
        fb.switch_to(base);
        fb.ret(Some(n.into()));
        fb.switch_to(rec);
        let a = fb.reg();
        let b_ = fb.reg();
        let n1 = fb.reg();
        let n2 = fb.reg();
        fb.sub(n1, n.into(), Operand::imm(1));
        fb.sub(n2, n.into(), Operand::imm(2));
        fb.call(Some(a), "fib", vec![n1.into()]);
        fb.call(Some(b_), "fib", vec![n2.into()]);
        let s = fb.reg();
        fb.add(s, a.into(), b_.into());
        fb.ret(Some(s.into()));

        let mut mb = FunctionBuilder::new("main", 0);
        let r = mb.reg();
        mb.call(Some(r), "fib", vec![Operand::imm(10)]);
        mb.ret(Some(r.into()));

        let mut m = Module::new();
        m.push_function(fb.finish());
        m.push_function(mb.finish());
        let out = run_module(&m, "main", &[]).unwrap();
        assert_eq!(out.result, Some(Value::Int(55)));
        assert!(out.trace.len() > 100);
    }

    #[test]
    fn memory_and_io() {
        let m = simple_main(|b| {
            let base = b.reg();
            b.alloc(base, Operand::imm(4));
            b.store(base.into(), Operand::imm(11));
            let v = b.reg();
            b.load(v, base.into());
            b.out(v.into());
            let inp = b.input();
            b.out(inp.into());
            let empty = b.input();
            b.out(empty.into());
            b.ret(None);
        });
        let mut machine = Machine::new(&m, RunConfig::default());
        machine.set_input(vec![Value::Int(99)]);
        machine.run("main", &[]).unwrap();
        assert_eq!(
            machine.output(),
            &[Value::Int(11), Value::Int(99), Value::Int(-1)]
        );
    }

    #[test]
    fn rand_is_deterministic() {
        let m = simple_main(|b| {
            let r = b.rand(Operand::imm(1000));
            b.ret(Some(r.into()));
        });
        let a = run_module(&m, "main", &[]).unwrap().result;
        let b_ = run_module(&m, "main", &[]).unwrap().result;
        assert_eq!(a, b_);
    }

    #[test]
    fn traps() {
        let div = simple_main(|b| {
            let x = b.reg();
            b.div(x, Operand::imm(1), Operand::imm(0));
            b.ret(None);
        });
        assert_eq!(
            run_module(&div, "main", &[]).unwrap_err(),
            RunError::DivisionByZero
        );

        let bad_addr = simple_main(|b| {
            let x = b.reg();
            b.load(x, Operand::imm(-1));
            b.ret(None);
        });
        assert_eq!(
            run_module(&bad_addr, "main", &[]).unwrap_err(),
            RunError::BadAddress(-1)
        );

        let spin = simple_main(|b| {
            let head = b.new_block();
            b.jmp(head);
            b.switch_to(head);
            b.jmp(head);
        });
        let mut machine = Machine::new(
            &spin,
            RunConfig {
                fuel: 1000,
                ..RunConfig::default()
            },
        );
        assert_eq!(machine.run("main", &[]).unwrap_err(), RunError::OutOfFuel);
    }

    #[test]
    fn stack_overflow_detected() {
        let mut fb = FunctionBuilder::new("f", 0);
        fb.call(None, "f", vec![]);
        fb.ret(None);
        let mut m = Module::new();
        m.push_function(fb.finish());
        let err = Machine::new(
            &m,
            RunConfig {
                max_call_depth: 64,
                ..RunConfig::default()
            },
        )
        .run("f", &[])
        .unwrap_err();
        assert_eq!(err, RunError::StackOverflow);
    }

    #[test]
    fn unknown_entry_and_arity() {
        let m = simple_main(|b| b.ret(None));
        assert!(matches!(
            run_module(&m, "nope", &[]).unwrap_err(),
            RunError::UnknownFunction(_)
        ));
        assert!(matches!(
            run_module(&m, "main", &[Value::Int(1)]).unwrap_err(),
            RunError::BadArgCount { .. }
        ));
    }

    #[test]
    fn reset_restores_initial_state() {
        let m = simple_main(|b| {
            let r = b.rand(Operand::imm(1_000_000));
            b.out(r.into());
            b.store(Operand::imm(0), Operand::imm(5));
            b.ret(None);
        });
        let mut machine = Machine::new(&m, RunConfig::default());
        machine.run("main", &[]).unwrap();
        let first = machine.output().to_vec();
        machine.reset();
        machine.run("main", &[]).unwrap();
        assert_eq!(machine.output(), &first[..]);
    }
}
