//! The original tree-walking interpreter, kept as the semantic oracle.
//!
//! [`crate::Machine`] executes a pre-decoded flat form of the module; the
//! golden bit-identity suite re-runs every workload through this direct
//! walk over the [`Module`] structure and asserts byte-identical traces,
//! outputs and step counts. Keep this implementation boring and obviously
//! faithful to the IR — it exists to catch drift in the fast path, so it
//! must never chase performance itself.

use brepl_ir::{BlockId, FuncId, Inst, Intrinsic, Module, Operand, Term, Value};
use brepl_trace::{Trace, TraceEvent};

use crate::arith::{eval_bin, eval_cmp};
use crate::error::RunError;
use crate::machine::{Outcome, RunConfig};

struct Frame {
    func: FuncId,
    block: BlockId,
    inst_idx: usize,
    regs: Vec<Value>,
    ret_dst: Option<brepl_ir::Reg>,
}

/// The tree-walking interpreter, bit-for-bit the behavior contract of
/// [`crate::Machine`]. Allocates its full heap eagerly and re-walks the
/// IR per step — slow, simple, and authoritative.
pub struct ReferenceMachine<'m> {
    module: &'m Module,
    heap: Vec<Value>,
    brk: usize,
    input: Vec<Value>,
    input_pos: usize,
    output: Vec<Value>,
    prng: u64,
    config: RunConfig,
}

impl<'m> ReferenceMachine<'m> {
    /// Creates a reference machine for `module`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::GlobalsExceedHeap`] if the module's global
    /// segment does not fit in the heap.
    pub fn new(module: &'m Module, config: RunConfig) -> Result<Self, RunError> {
        if module.globals > config.heap_words {
            return Err(RunError::GlobalsExceedHeap {
                globals: module.globals,
                heap_words: config.heap_words,
            });
        }
        Ok(ReferenceMachine {
            module,
            heap: vec![Value::Int(0); config.heap_words],
            brk: module.globals,
            input: Vec::new(),
            input_pos: 0,
            output: Vec::new(),
            prng: config.seed | 1,
            config,
        })
    }

    /// Replaces the input tape consumed by the `in()` intrinsic.
    pub fn set_input(&mut self, input: Vec<Value>) {
        self.input = input;
        self.input_pos = 0;
    }

    /// The values written by the `out()` intrinsic so far.
    pub fn output(&self) -> &[Value] {
        &self.output
    }

    fn rand_next(&mut self) -> u64 {
        // xorshift64* — deterministic, seedable, good enough for workloads.
        let mut x = self.prng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.prng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Runs `entry(args)` to completion, recording every conditional branch.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on traps (division by zero, bad address,
    /// fuel/stack exhaustion, type errors) or if `entry` is unknown.
    pub fn run(&mut self, entry: &str, args: &[Value]) -> Result<Outcome, RunError> {
        let fid = self
            .module
            .function_by_name(entry)
            .ok_or_else(|| RunError::UnknownFunction(entry.to_string()))?;
        let f = self.module.function(fid);
        if args.len() != f.n_params as usize {
            return Err(RunError::BadArgCount {
                got: args.len(),
                want: f.n_params as usize,
            });
        }
        let mut regs = vec![Value::Int(0); f.n_regs as usize];
        regs[..args.len()].copy_from_slice(args);
        let mut frames = vec![Frame {
            func: fid,
            block: f.entry,
            inst_idx: 0,
            regs,
            ret_dst: None,
        }];

        let mut trace = Trace::new();
        let mut steps: u64 = 0;
        let fuel = self.config.fuel;

        'run: loop {
            let frame = frames.last_mut().expect("frame stack never empty here");
            let func = self.module.function(frame.func);
            let block = func.block(frame.block);

            // Straight-line portion.
            while frame.inst_idx < block.insts.len() {
                steps += 1;
                if steps > fuel {
                    return Err(RunError::OutOfFuel);
                }
                let inst = &block.insts[frame.inst_idx];
                frame.inst_idx += 1;
                match inst {
                    Inst::Const { dst, value } => frame.regs[dst.index()] = *value,
                    Inst::Copy { dst, src } => frame.regs[dst.index()] = read(&frame.regs, *src),
                    Inst::Bin { op, dst, lhs, rhs } => {
                        let a = read(&frame.regs, *lhs);
                        let b = read(&frame.regs, *rhs);
                        frame.regs[dst.index()] = eval_bin(*op, a, b)?;
                    }
                    Inst::Cmp { op, dst, lhs, rhs } => {
                        let a = read(&frame.regs, *lhs);
                        let b = read(&frame.regs, *rhs);
                        frame.regs[dst.index()] = Value::Int(i64::from(eval_cmp(*op, a, b)?));
                    }
                    Inst::Ftoi { dst, src } => {
                        frame.regs[dst.index()] = match read(&frame.regs, *src) {
                            Value::Float(v) => Value::Int(v as i64),
                            v @ Value::Int(_) => v,
                        }
                    }
                    Inst::Itof { dst, src } => {
                        frame.regs[dst.index()] = match read(&frame.regs, *src) {
                            Value::Int(v) => Value::Float(v as f64),
                            v @ Value::Float(_) => v,
                        }
                    }
                    Inst::Load { dst, addr } => {
                        let a = addr_of(read(&frame.regs, *addr), self.heap.len())?;
                        frame.regs[dst.index()] = self.heap[a];
                    }
                    Inst::Store { addr, value } => {
                        let a = addr_of(read(&frame.regs, *addr), self.heap.len())?;
                        self.heap[a] = read(&frame.regs, *value);
                    }
                    Inst::Alloc { dst, words } => {
                        let w = read(&frame.regs, *words)
                            .as_int()
                            .ok_or(RunError::TypeError("alloc size must be an integer"))?;
                        if w < 0 {
                            return Err(RunError::TypeError("alloc size must be non-negative"));
                        }
                        let base = self.brk;
                        let end = base.checked_add(w as usize).ok_or(RunError::OutOfMemory)?;
                        if end > self.heap.len() {
                            return Err(RunError::OutOfMemory);
                        }
                        self.brk = end;
                        frame.regs[dst.index()] = Value::Int(base as i64);
                    }
                    Inst::Call { dst, callee, args } => {
                        let cid = self
                            .module
                            .function_by_name(callee)
                            .ok_or_else(|| RunError::UnknownFunction(callee.clone()))?;
                        let cf = self.module.function(cid);
                        let mut cregs = vec![Value::Int(0); cf.n_regs as usize];
                        for (i, a) in args.iter().enumerate() {
                            cregs[i] = read(&frame.regs, *a);
                        }
                        let ret_dst = *dst;
                        let entry = cf.entry;
                        if frames.len() >= self.config.max_call_depth {
                            return Err(RunError::StackOverflow);
                        }
                        frames.push(Frame {
                            func: cid,
                            block: entry,
                            inst_idx: 0,
                            regs: cregs,
                            ret_dst,
                        });
                        continue 'run;
                    }
                    Inst::Intrin { dst, which, args } => {
                        let argv: Vec<Value> = args.iter().map(|a| read(&frame.regs, *a)).collect();
                        let result = match which {
                            Intrinsic::Out => {
                                let v = *argv
                                    .first()
                                    .ok_or(RunError::BadIntrinsic("out needs one argument"))?;
                                self.output.push(v);
                                Value::Int(0)
                            }
                            Intrinsic::In => {
                                if self.input_pos < self.input.len() {
                                    let v = self.input[self.input_pos];
                                    self.input_pos += 1;
                                    v
                                } else {
                                    Value::Int(-1)
                                }
                            }
                            Intrinsic::Rand => {
                                let bound = argv
                                    .first()
                                    .and_then(|v| v.as_int())
                                    .ok_or(RunError::BadIntrinsic("rand needs an int bound"))?;
                                if bound <= 0 {
                                    return Err(RunError::BadIntrinsic(
                                        "rand bound must be positive",
                                    ));
                                }
                                Value::Int((self.rand_next() % bound as u64) as i64)
                            }
                            Intrinsic::Sqrt => {
                                let x = match argv.first() {
                                    Some(Value::Float(v)) => *v,
                                    Some(Value::Int(v)) => *v as f64,
                                    None => {
                                        return Err(RunError::BadIntrinsic(
                                            "sqrt needs one argument",
                                        ))
                                    }
                                };
                                Value::Float(x.sqrt())
                            }
                        };
                        if let Some(d) = dst {
                            frame.regs[d.index()] = result;
                        }
                    }
                }
            }

            // Terminator.
            steps += 1;
            if steps > fuel {
                return Err(RunError::OutOfFuel);
            }
            match &block.term {
                Term::Br {
                    cond,
                    then_,
                    else_,
                    site,
                } => {
                    let taken = read(&frame.regs, *cond).is_truthy();
                    trace.push(TraceEvent { site: *site, taken });
                    frame.block = if taken { *then_ } else { *else_ };
                    frame.inst_idx = 0;
                }
                Term::Jmp { target } => {
                    frame.block = *target;
                    frame.inst_idx = 0;
                }
                Term::Ret { value } => {
                    let v = value.map(|o| read(&frame.regs, o));
                    let finished = frames.pop().expect("frame stack never empty here");
                    match frames.last_mut() {
                        None => {
                            return Ok(Outcome {
                                result: v,
                                trace,
                                steps,
                            });
                        }
                        Some(caller) => {
                            if let Some(d) = finished.ret_dst {
                                caller.regs[d.index()] = v.unwrap_or(Value::Int(0));
                            }
                        }
                    }
                }
            }
        }
    }
}

fn read(regs: &[Value], op: Operand) -> Value {
    match op {
        Operand::Reg(r) => regs[r.index()],
        Operand::Imm(v) => v,
    }
}

fn addr_of(v: Value, heap_len: usize) -> Result<usize, RunError> {
    let a = v
        .as_int()
        .ok_or(RunError::TypeError("address must be an integer"))?;
    if a < 0 || a as usize >= heap_len {
        return Err(RunError::BadAddress(a));
    }
    Ok(a as usize)
}
