//! # brepl-sim — an interpreter for the brepl IR with branch tracing
//!
//! This is the reproduction's stand-in for the paper's profiling tool: the
//! paper inserts trace code into assembly sources and runs the instrumented
//! binary; we interpret the IR directly and emit a [`brepl_trace::Trace`]
//! of `(branch site, direction)` events. Because replication transforms
//! produce new modules, the same machine also *verifies* transforms by
//! comparing observable outputs between original and replicated programs.
//!
//! The machine pre-decodes the module into a flat executable form on
//! construction and grows its heap lazily, so repeated runs are cheap;
//! the original tree-walking interpreter survives as
//! [`ReferenceMachine`], the oracle the golden bit-identity tests compare
//! the fast path against.
//!
//! ```
//! use brepl_ir::{FunctionBuilder, Module, Operand};
//! use brepl_sim::{Machine, RunConfig};
//!
//! let mut b = FunctionBuilder::new("main", 0);
//! let i = b.reg();
//! b.const_int(i, 0);
//! let head = b.new_block();
//! let body = b.new_block();
//! let done = b.new_block();
//! b.jmp(head);
//! b.switch_to(head);
//! let c = b.lt(i.into(), Operand::imm(10));
//! b.br(c, body, done);
//! b.switch_to(body);
//! b.add(i, i.into(), Operand::imm(1));
//! b.jmp(head);
//! b.switch_to(done);
//! b.out(i.into());
//! b.ret(None);
//!
//! let mut m = Module::new();
//! m.push_function(b.finish());
//!
//! let mut machine = Machine::new(&m, RunConfig::default()).unwrap();
//! let outcome = machine.run("main", &[]).unwrap();
//! assert_eq!(outcome.trace.len(), 11); // 10 taken + 1 exit
//! assert_eq!(machine.output()[0], brepl_ir::Value::Int(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod error;
mod exec;
mod machine;
mod reference;

pub use error::RunError;
pub use machine::{Machine, Outcome, RunConfig};
pub use reference::ReferenceMachine;
