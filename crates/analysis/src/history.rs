//! Witness-independent checking of the history encoding.
//!
//! [`validate_replication`](crate::validate_replication) trusts the
//! `ReplicaMap` witness the replicator emits — so a transform bug that
//! corrupts the code *and* its witness consistently slips through.
//! [`check_history`] closes that gap: it proves, from first principles,
//! that every replica of a machine-controlled branch is only ever
//! executed while its machine is in the state whose prediction the
//! replica pins. Its trust base is disjoint from the witness:
//!
//! * the machine tables come from the replication **plan** (the
//!   transform's input);
//! * the replica structure comes from the shipped module plus branch
//!   **provenance** (mechanical renumbering);
//! * the pinned directions come from the shipped [`StaticPrediction`].
//!
//! Over the product fixpoint of [`crate::solve_site_product`] it emits:
//!
//! | code  | finding | severity |
//! |-------|---------|----------|
//! | BR009 | replica reachable under a state predicting the other way | error |
//! | BR010 | replica reachable under states with conflicting predictions | error |
//! | BR011 | machine state under which no replica is reachable | warning |
//! | BR012 | malformed table / runaway product / machine site without replicas | error |

use brepl_ir::{BranchId, FuncId, Loc, Module};
use brepl_predict::StaticPrediction;

use crate::diag::{AnalysisDiag, DiagCode};
use crate::product::{solve_site_product, HistorySpec};

/// Checks the history encoding of every machine-controlled site in `spec`
/// against the replicated module — without the replica-map witness.
///
/// `provenance` maps the replicated module's branch sites back to original
/// sites (from `Module::renumber_branches_with_provenance`);
/// `predictions` is the shipped static prediction table.
pub fn check_history(
    replicated: &Module,
    provenance: &[BranchId],
    spec: &HistorySpec,
    predictions: &StaticPrediction,
) -> Vec<AnalysisDiag> {
    let mut diags = Vec::new();
    for (&site, table) in &spec.machines {
        diags.extend(site_history_diags(
            replicated,
            provenance,
            site,
            table,
            predictions,
        ));
    }
    diags
}

/// The per-site slice of [`check_history`]: the product solve and every
/// diagnostic judgement for one machine-controlled site. The loop above
/// and the pipeline's incremental gate cache both call this.
pub(crate) fn site_history_diags(
    replicated: &Module,
    provenance: &[BranchId],
    site: BranchId,
    table: &crate::product::MachineTable,
    predictions: &StaticPrediction,
) -> Vec<AnalysisDiag> {
    let mut diags = Vec::new();
    let solution = match solve_site_product(replicated, provenance, site, table) {
        Err(reason) => {
            diags.push(
                AnalysisDiag::new(
                    DiagCode::ProductFixpointFailure,
                    site_loc(replicated, provenance, site),
                    format!("site {site}: {reason}"),
                )
                .with_site(site),
            );
            return diags;
        }
        Ok(None) => {
            diags.push(
                AnalysisDiag::new(
                    DiagCode::ProductFixpointFailure,
                    Loc::function(FuncId(0)),
                    format!(
                        "site {site} is machine-controlled but no replica branch of it \
                         exists in the replicated module"
                    ),
                )
                .with_site(site),
            );
            return diags;
        }
        Ok(Some(s)) => s,
    };

    let mut reached = vec![false; table.len()];
    for &(bid, new_site) in &solution.branches {
        let states = solution.states_at(bid);
        for &q in &states {
            reached[q] = true;
        }
        if states.is_empty() {
            // Unreachable replica: BR001's territory, nothing to say
            // about history here.
            continue;
        }
        let pinned = predictions.get(new_site);
        let loc = Loc::term(solution.func, bid);
        let offending: Vec<usize> = states
            .iter()
            .copied()
            .filter(|&q| table.states[q].predict != pinned)
            .collect();
        if !offending.is_empty() {
            diags.push(
                AnalysisDiag::new(
                    DiagCode::HistoryPredictionViolation,
                    loc,
                    format!(
                        "replica of site {site} pins {} but is reachable in machine \
                         state{} {:?} predicting {}",
                        dir(pinned),
                        if offending.len() == 1 { "" } else { "s" },
                        offending,
                        dir(!pinned),
                    ),
                )
                .with_site(site),
            );
        }
        let has_taken = states.iter().any(|&q| table.states[q].predict);
        let has_not_taken = states.iter().any(|&q| !table.states[q].predict);
        if has_taken && has_not_taken {
            diags.push(
                AnalysisDiag::new(
                    DiagCode::HistoryConflict,
                    loc,
                    format!(
                        "replica of site {site} is reachable in states {states:?} whose \
                         predictions conflict — the region is under-replicated"
                    ),
                )
                .with_site(site),
            );
        }
    }

    let missing: Vec<usize> = (0..table.len()).filter(|&q| !reached[q]).collect();
    if !missing.is_empty() {
        let loc = solution
            .branches
            .first()
            .map(|&(bid, _)| Loc::term(solution.func, bid))
            .unwrap_or(Loc::function(solution.func));
        diags.push(
            AnalysisDiag::new(
                DiagCode::UnreachableMachineState,
                loc,
                format!(
                    "machine state{} {missing:?} of site {site} reach{} no replica \
                     branch — replicated code for {} wasted",
                    if missing.len() == 1 { "" } else { "s" },
                    if missing.len() == 1 { "es" } else { "" },
                    if missing.len() == 1 {
                        "it is"
                    } else {
                        "them is"
                    },
                ),
            )
            .with_site(site),
        );
    }
    diags
}

fn dir(taken: bool) -> &'static str {
    if taken {
        "taken"
    } else {
        "not-taken"
    }
}

/// Best-effort location for a site whose product could not be solved: the
/// first replica branch if one exists, else the first function.
fn site_loc(replicated: &Module, provenance: &[BranchId], site: BranchId) -> Loc {
    for (fid, f) in replicated.iter_functions() {
        for (bid, block) in f.iter_blocks() {
            if let Some(ns) = block.term.branch_site() {
                if provenance.get(ns.index()) == Some(&site) {
                    return Loc::term(fid, bid);
                }
            }
        }
    }
    Loc::function(FuncId(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::{MachineTable, TableState};
    use brepl_ir::{BlockId, FunctionBuilder, Operand, Term};

    /// Hand-built faithful replication of an alternating loop branch under
    /// a 2-state flip-flop: two copies of the loop body, each pinning its
    /// state's prediction and branching into the *other* state's copy.
    ///
    /// Block layout: b0 entry -> b1 head0 (state 0, pins taken) ->
    /// taken: b2 body -> b3 head1 (state 1, pins not-taken) ->
    /// not-taken: b4 body -> b1; both heads exit to b5 on the other leg.
    fn replicated_flip_flop() -> (Module, Vec<BranchId>) {
        let mut b = FunctionBuilder::new("main", 1);
        let n = b.param(0);
        let i = b.reg();
        b.const_int(i, 0);
        let head0 = b.new_block();
        let body0 = b.new_block();
        let head1 = b.new_block();
        let body1 = b.new_block();
        let exit = b.new_block();
        b.jmp(head0);
        b.switch_to(head0);
        let c0 = b.lt(i.into(), n.into());
        b.br(c0, body0, exit);
        b.switch_to(body0);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head1);
        b.switch_to(head1);
        let c1 = b.lt(i.into(), n.into());
        b.br(c1, body1, exit);
        b.switch_to(body1);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head0);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        // Both branches are replicas of one original site 0.
        let provenance = vec![BranchId(0), BranchId(0)];
        (m, provenance)
    }

    /// The machine the layout above encodes: state 0 predicts taken and
    /// moves to state 1 on taken; state 1 predicts not-taken... except the
    /// loop branch here is always-taken-until-exit, so encode a machine
    /// whose transitions match the block wiring: taken flips the state,
    /// not-taken exits (state unchanged).
    fn wired_machine() -> MachineTable {
        MachineTable {
            states: vec![
                TableState {
                    predict: true,
                    on_taken: 1,
                    on_not_taken: 0,
                },
                TableState {
                    predict: false,
                    on_taken: 0,
                    on_not_taken: 1,
                },
            ],
            initial: 0,
        }
    }

    fn predictions_for(m: &Module, table: &MachineTable, states: &[usize]) -> StaticPrediction {
        let mut p = StaticPrediction::with_default(true);
        let mut i = 0usize;
        for (_, f) in m.iter_functions() {
            for (_, block) in f.iter_blocks() {
                if let Some(site) = block.term.branch_site() {
                    p.set(site, table.states[states[i]].predict);
                    i += 1;
                }
            }
        }
        p
    }

    fn spec_of(table: MachineTable) -> HistorySpec {
        let mut spec = HistorySpec::new();
        spec.insert(BranchId(0), table);
        spec
    }

    #[test]
    fn faithful_encoding_is_clean() {
        let (m, prov) = replicated_flip_flop();
        let table = wired_machine();
        let predictions = predictions_for(&m, &table, &[0, 1]);
        let diags = check_history(&m, &prov, &spec_of(table), &predictions);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wrong_pin_is_br009_only() {
        let (m, prov) = replicated_flip_flop();
        let table = wired_machine();
        // Pin state 0's replica with state 1's prediction.
        let predictions = predictions_for(&m, &table, &[1, 1]);
        let diags = check_history(&m, &prov, &spec_of(table), &predictions);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagCode::HistoryPredictionViolation);
    }

    #[test]
    fn merged_replicas_are_br010() {
        let (mut m, prov) = replicated_flip_flop();
        // Redirect body0's fallthrough back to head0 instead of head1:
        // head0 now executes in both machine states.
        let f = m.function_mut(brepl_ir::FuncId(0));
        f.block_mut(BlockId(2)).term = Term::Jmp { target: BlockId(1) };
        let table = wired_machine();
        let predictions = predictions_for(&m, &table, &[0, 1]);
        let diags = check_history(&m, &prov, &spec_of(table), &predictions);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(
            codes.contains(&DiagCode::HistoryConflict),
            "expected BR010, got {diags:?}"
        );
    }

    #[test]
    fn extra_machine_state_is_br011_warning() {
        let (m, prov) = replicated_flip_flop();
        let mut table = wired_machine();
        // A third state nothing transitions into.
        table.states.push(TableState {
            predict: true,
            on_taken: 0,
            on_not_taken: 1,
        });
        let predictions = {
            let t = wired_machine();
            predictions_for(&m, &t, &[0, 1])
        };
        let diags = check_history(&m, &prov, &spec_of(table), &predictions);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagCode::UnreachableMachineState);
        assert_eq!(diags[0].severity(), crate::Severity::Warning);
    }

    #[test]
    fn malformed_table_and_missing_replicas_are_br012() {
        let (m, prov) = replicated_flip_flop();
        let mut bad = wired_machine();
        bad.states[0].on_taken = 99;
        let predictions = predictions_for(&m, &wired_machine(), &[0, 1]);
        let diags = check_history(&m, &prov, &spec_of(bad), &predictions);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagCode::ProductFixpointFailure);

        // A machine for a site with no replicas at all.
        let mut spec = HistorySpec::new();
        spec.insert(BranchId(7), wired_machine());
        let diags = check_history(&m, &prov, &spec, &predictions);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagCode::ProductFixpointFailure);
        assert!(diags[0].message.contains("no replica branch"));
    }
}
