//! Static profile estimation: heuristic branch probabilities and
//! Wu–Larus frequency propagation — the fourth static layer.
//!
//! [`estimate_profile`] assigns every conditional branch a taken
//! probability and every block an expected execution frequency *without
//! running the program*:
//!
//! 1. **Branch probabilities.** The classify layer's proofs are promoted
//!    to exact rationals ([`DirectionClass::ProvedMonostatic`] → `1/1` or
//!    `0/1`, [`DirectionClass::BoundedBias`] → `num/den`). Everything
//!    else gets Ball–Larus heuristic evidence — loop back-edge, opcode,
//!    call, return, store and guard — combined Wu–Larus-style with the
//!    Dempster–Shafer rule `p = p₁p₂ / (p₁p₂ + (1−p₁)(1−p₂))`.
//! 2. **Frequency propagation.** Loops are processed innermost-first:
//!    per unit of flow entering a loop header, one local propagation over
//!    the loop body (inner headers contribute through their
//!    already-known multipliers) yields the loop's *exit-edge mass*, and
//!    the cyclic probability is its complement, `cp = 1 − exit_mass`.
//!    A final pass over the whole function in reverse postorder —
//!    skipping back edges, multiplying each header's entry mass by
//!    `1/(1−cp)` — produces the block and edge frequencies.
//! 3. **Call-graph scaling.** A bounded relaxation over call-site mass
//!    turns per-entry function frequencies into whole-program site
//!    frequencies (`main` = 1 entry; recursion is capped, never spun).
//!
//! The result is machine-checkable: at the fixpoint every block's
//! in-edge mass (plus 1 for the entry) equals its frequency —
//! [`StaticProfile::check_conservation`] verifies exactly that, and the
//! drift gate ([`static_profile_diags`]) turns violations into `BR021`.
//! The propagation is metered like SCCP's fixpoint and **fails closed**:
//! irreducible control flow or a blown step budget withholds every
//! estimate for the function (`BR022`) instead of shipping garbage.
//!
//! Against a measured trace the gate also checks every *exact* bias
//! estimate in integer arithmetic (`BR019`) and that no mass was
//! assigned to proved-unreachable sites (`BR020`). Heuristic estimates
//! are *never* gated — their drift against measurement is data (the
//! `staticprofile` bench reports it), not corruption: a heuristic being
//! wrong about an input-dependent branch is precisely the hard-branch
//! taxonomy the estimate cannot see.

use brepl_cfg::{reverse_postorder, Cfg, ClassifiedBranches, DomTree, LoopForest, LoopId};
use brepl_ir::{BlockId, BranchId, CmpOp, FuncId, Inst, Loc, Module, Operand, Term, Value};
use brepl_trace::TraceStats;

use crate::classify::{Classification, DirectionClass};
use crate::diag::{AnalysisDiag, DiagCode};
use crate::solver::default_solve_budget;

/// Ball–Larus heuristic confidences (probability that the branch goes
/// the direction the heuristic predicts). The values are the ones
/// Wu–Larus report from the Ball–Larus measurements.
mod confidence {
    /// Loop branch: the direction staying in (or re-entering) the loop.
    pub const LOOP: f64 = 0.88;
    /// Opcode: equality tests fail, negative/pointer-like compares fail.
    pub const OPCODE: f64 = 0.84;
    /// Call: the successor leading to a call is avoided.
    pub const CALL: f64 = 0.78;
    /// Return: the successor that returns immediately is avoided.
    pub const RETURN: f64 = 0.72;
    /// Store: the successor containing a store is avoided.
    pub const STORE: f64 = 0.55;
    /// Guard: a condition register re-used in the taken successor holds.
    pub const GUARD: f64 = 0.62;
}

/// Heuristic cyclic probabilities are capped here so an unproved loop
/// never claims an unbounded trip count (multiplier ≤ 50).
const MAX_HEURISTIC_CP: f64 = 0.98;

/// Call-graph relaxation passes and the cap on any function's entry
/// count — recursion saturates instead of spinning.
const CALL_SCALE_PASSES: usize = 8;
const MAX_CALL_SCALE: f64 = 1e12;

/// Relative tolerance of the flow-conservation check. The propagation
/// is plain f64 arithmetic, so exact equality is only approximate.
pub const CONSERVATION_EPS: f64 = 1e-6;

/// How confident one bias estimate is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BiasEstimate {
    /// The taken-rate is *proved* to be exactly `num / den` (promoted
    /// from the classify layer). Checkable against a measured trace in
    /// integer arithmetic — the `BR019` trust base.
    Exact {
        /// Numerator of the exact taken-rate.
        num: u64,
        /// Denominator of the exact taken-rate.
        den: u64,
    },
    /// Heuristic evidence only; the probability is a guess and is never
    /// gated against measurement.
    Heuristic(f64),
}

impl BiasEstimate {
    /// The estimated taken-probability as a float.
    pub fn prob(&self) -> f64 {
        match self {
            BiasEstimate::Exact { num, den } => *num as f64 / (*den).max(1) as f64,
            BiasEstimate::Heuristic(p) => *p,
        }
    }

    /// True for proof-backed exact estimates.
    pub fn is_exact(&self) -> bool {
        matches!(self, BiasEstimate::Exact { .. })
    }
}

/// One branch site's static estimate.
#[derive(Clone, Debug)]
pub struct SiteEstimate {
    /// The branch site.
    pub site: BranchId,
    /// The function holding the branch.
    pub func: FuncId,
    /// The block whose terminator is the branch.
    pub block: BlockId,
    /// The taken-bias estimate.
    pub bias: BiasEstimate,
    /// Expected executions of the site per whole-program run
    /// (call-graph-scaled block frequency).
    pub freq: f64,
}

/// Per-function frequency estimates, in per-entry units.
#[derive(Clone, Debug)]
pub struct FuncProfile {
    /// Expected executions of each block per function entry.
    pub bfreq: Vec<f64>,
    /// Expected flow along each out-edge, aligned with
    /// `Cfg::succs(block)` slot order.
    pub efreq: Vec<Vec<f64>>,
    /// Estimated taken-probability per block holding a branch
    /// (1.0-sized map: `prob[b]` is meaningful only for branch blocks).
    pub prob: Vec<f64>,
    /// Estimated whole-program entries of this function.
    pub call_scale: f64,
    /// False when the propagation failed closed (irreducible flow or a
    /// blown budget): every frequency above is zeroed and no claim is
    /// made (`BR022`).
    pub converged: bool,
}

/// The whole-module static profile.
#[derive(Clone, Debug)]
pub struct StaticProfile {
    /// Per-function estimates, indexed by `FuncId`.
    pub funcs: Vec<FuncProfile>,
    /// Per-site estimates, in function/block order.
    pub sites: Vec<SiteEstimate>,
    /// Functions whose propagation failed closed.
    pub unconverged_funcs: Vec<FuncId>,
}

impl StaticProfile {
    /// Looks up one site's estimate.
    pub fn by_site(&self, site: BranchId) -> Option<&SiteEstimate> {
        self.sites.iter().find(|s| s.site == site)
    }

    /// True when every function's propagation converged.
    pub fn converged(&self) -> bool {
        self.unconverged_funcs.is_empty()
    }

    /// Counts `(exact, heuristic)` site estimates.
    pub fn counts(&self) -> (usize, usize) {
        let mut c = (0, 0);
        for s in &self.sites {
            if s.bias.is_exact() {
                c.0 += 1;
            } else {
                c.1 += 1;
            }
        }
        c
    }

    /// Checks the flow-conservation invariant: for every block of every
    /// converged function, in-edge mass (plus 1 for the entry) equals
    /// the block frequency within [`CONSERVATION_EPS`] relative
    /// tolerance. Returns the violations as `(func, block, |error|)`.
    ///
    /// An honest [`estimate_profile`] output passes by construction —
    /// the fuzz oracle asserts exactly that — so any violation means the
    /// profile was corrupted after the fact (`BR021`).
    pub fn check_conservation(&self, module: &Module) -> Vec<(FuncId, BlockId, f64)> {
        let mut violations = Vec::new();
        for (fid, func) in module.iter_functions() {
            let fp = &self.funcs[fid.index()];
            if !fp.converged {
                continue;
            }
            let cfg = Cfg::new(func);
            // In-mass per block from the stored edge frequencies.
            let mut in_mass = vec![0.0f64; cfg.len()];
            for b in cfg.blocks() {
                for (slot, &s) in cfg.succs(b).iter().enumerate() {
                    in_mass[s.index()] += fp.efreq[b.index()][slot];
                }
            }
            in_mass[cfg.entry().index()] += 1.0;
            // Back edges re-inject header mass; at the fixpoint the sum
            // still matches because the header multiplier accounts for
            // it — conservation holds for *every* block.
            for b in cfg.blocks() {
                let got = fp.bfreq[b.index()];
                let want = in_mass[b.index()];
                let err = (got - want).abs();
                if err > CONSERVATION_EPS * want.abs().max(1.0) {
                    violations.push((fid, b, err));
                }
            }
        }
        violations
    }
}

/// Dempster–Shafer combination of two "the branch is taken" evidences.
fn combine(p1: f64, p2: f64) -> f64 {
    let num = p1 * p2;
    let den = num + (1.0 - p1) * (1.0 - p2);
    if den <= f64::EPSILON {
        0.5
    } else {
        num / den
    }
}

/// True when the block stores to memory (the Ball–Larus store
/// heuristic's trigger; calls and I/O intrinsics do not count).
fn block_has_store(func: &brepl_ir::Function, b: BlockId) -> bool {
    func.block(b)
        .insts
        .iter()
        .any(|i| matches!(i, Inst::Store { .. }))
}

/// True when the block makes a direct call.
fn block_has_call(func: &brepl_ir::Function, b: BlockId) -> bool {
    func.block(b)
        .insts
        .iter()
        .any(|i| matches!(i, Inst::Call { .. }))
}

/// True when the block returns without branching further.
fn block_returns(func: &brepl_ir::Function, b: BlockId) -> bool {
    matches!(func.block(b).term, Term::Ret { .. })
}

/// True when the successor block reads the branch's condition register —
/// the guard-heuristic trigger (`if (x) use(x)` guards succeed).
fn block_uses_reg(func: &brepl_ir::Function, b: BlockId, reg: brepl_ir::Reg) -> bool {
    let mut used = false;
    for i in &func.block(b).insts {
        i.for_each_use(|o| {
            if o.reg() == Some(reg) {
                used = true;
            }
        });
    }
    used
}

/// The heuristic taken-probability for one branch, before any proof
/// promotion. Each applicable heuristic contributes its confidence via
/// Dempster–Shafer combination, starting from the uninformed 0.5.
fn heuristic_prob(
    func: &brepl_ir::Function,
    info: &brepl_cfg::BranchInfo,
    forest: &LoopForest,
) -> f64 {
    let mut p = 0.5f64;

    // Loop heuristic: prefer the direction that is a back edge, or that
    // stays inside the innermost loop when the other side leaves it.
    if info.taken_is_back_edge {
        p = combine(p, confidence::LOOP);
    } else if info
        .innermost_loop
        .map(|l| {
            forest
                .get(l)
                .back_edges
                .iter()
                .any(|&(t, h)| t == info.block && h == info.else_)
        })
        .unwrap_or(false)
    {
        p = combine(p, 1.0 - confidence::LOOP);
    } else if info.then_in_loop && !info.else_in_loop {
        p = combine(p, confidence::LOOP);
    } else if info.else_in_loop && !info.then_in_loop {
        p = combine(p, 1.0 - confidence::LOOP);
    }

    // Opcode heuristic: equality comparisons fail, comparisons against
    // negative immediates fail. The condition is located by scanning the
    // branch block for the compare defining the condition register.
    let block = func.block(info.block);
    if let Term::Br { cond, .. } = &block.term {
        if let Some(creg) = cond.reg() {
            for inst in block.insts.iter().rev() {
                if inst.def() != Some(creg) {
                    continue;
                }
                if let Inst::Cmp { op, rhs, .. } = inst {
                    let neg_imm = matches!(rhs, Operand::Imm(Value::Int(k)) if *k < 0);
                    match op {
                        CmpOp::Eq => p = combine(p, 1.0 - confidence::OPCODE),
                        CmpOp::Ne => p = combine(p, confidence::OPCODE),
                        CmpOp::Lt | CmpOp::Le if neg_imm => {
                            p = combine(p, 1.0 - confidence::OPCODE)
                        }
                        _ => {}
                    }
                }
                break;
            }
            // Guard heuristic: the taken successor re-uses the condition
            // register (and the other side does not).
            let then_uses = block_uses_reg(func, info.then_, creg);
            let else_uses = block_uses_reg(func, info.else_, creg);
            if then_uses && !else_uses {
                p = combine(p, confidence::GUARD);
            } else if else_uses && !then_uses {
                p = combine(p, 1.0 - confidence::GUARD);
            }
        }
    }

    // Call heuristic: avoid the side that calls.
    let then_calls = block_has_call(func, info.then_);
    let else_calls = block_has_call(func, info.else_);
    if then_calls && !else_calls {
        p = combine(p, 1.0 - confidence::CALL);
    } else if else_calls && !then_calls {
        p = combine(p, confidence::CALL);
    }

    // Return heuristic: avoid the side that returns immediately.
    let then_rets = block_returns(func, info.then_);
    let else_rets = block_returns(func, info.else_);
    if then_rets && !else_rets {
        p = combine(p, 1.0 - confidence::RETURN);
    } else if else_rets && !then_rets {
        p = combine(p, confidence::RETURN);
    }

    // Store heuristic: avoid the side that stores.
    let then_stores = block_has_store(func, info.then_);
    let else_stores = block_has_store(func, info.else_);
    if then_stores && !else_stores {
        p = combine(p, 1.0 - confidence::STORE);
    } else if else_stores && !then_stores {
        p = combine(p, confidence::STORE);
    }

    // The clamp ceiling must not exceed MAX_HEURISTIC_CP: a loop header
    // whose stay-in-loop probability beats the cyclic-probability cap
    // would make the capped header multiplier disagree with the stored
    // edge probabilities, and the profile would violate its own
    // flow-conservation invariant (a false BR021 on honest input-drain
    // loops, where the loop, opcode and return heuristics all agree).
    p.clamp(1.0 - MAX_HEURISTIC_CP, MAX_HEURISTIC_CP)
}

/// Per-function propagation state shared by the loop-local passes and
/// the final whole-function pass.
struct Propagation<'a> {
    cfg: &'a Cfg,
    forest: &'a LoopForest,
    rpo: &'a [BlockId],
    rpo_pos: Vec<usize>,
    /// Taken-probability per block (branch blocks only; 1.0 elsewhere).
    prob: Vec<f64>,
    /// Cyclic probability per loop, filled innermost-first.
    cp: Vec<f64>,
    steps: u64,
    budget: u64,
}

impl<'a> Propagation<'a> {
    /// The flow fraction block `b` sends down successor slot `slot`.
    fn slot_prob(&self, b: BlockId, slot: usize, nsuccs: usize) -> f64 {
        if nsuccs <= 1 {
            1.0
        } else if slot == 0 {
            self.prob[b.index()]
        } else {
            1.0 - self.prob[b.index()]
        }
    }

    /// Propagates one unit of flow from `root` through `region` (`None`
    /// = the whole function), skipping every back edge and multiplying
    /// loop-header in-mass by the header's `1/(1-cp)`. Returns per-block
    /// frequencies, or `None` when the region is irreducible (an edge
    /// retreats in RPO without being a natural back edge) or the step
    /// budget runs out — the caller fails closed.
    fn propagate(&mut self, root: BlockId, region: Option<LoopId>) -> Option<Vec<f64>> {
        let n = self.cfg.len();
        let mut freq = vec![0.0f64; n];
        let in_region = |b: BlockId, forest: &LoopForest| match region {
            None => true,
            Some(l) => forest.get(l).contains(b),
        };
        for &b in self.rpo {
            if !in_region(b, self.forest) {
                continue;
            }
            self.steps += 1;
            if self.steps > self.budget {
                return None;
            }
            let mut mass = 0.0f64;
            if b == root {
                mass = 1.0;
            } else {
                for &p in self.cfg.preds(b) {
                    if !in_region(p, self.forest) {
                        continue;
                    }
                    if self.is_back_edge(p, b) {
                        continue;
                    }
                    // A retreating edge that is not a natural back edge
                    // means irreducible flow: fail closed.
                    if self.rpo_pos[p.index()] >= self.rpo_pos[b.index()] {
                        return None;
                    }
                    let succs = self.cfg.succs(p);
                    for (slot, &s) in succs.iter().enumerate() {
                        if s == b {
                            mass += freq[p.index()] * self.slot_prob(p, slot, succs.len());
                        }
                    }
                }
            }
            // A loop header inside the region (not the root itself)
            // multiplies its entry mass by the loop's already-computed
            // cyclic factor; unknown (not yet computed) cp of an *outer*
            // loop cannot occur because loops are processed inner-first.
            if let Some(l) = self.forest.innermost(b) {
                if self.forest.get(l).header == b && b != root {
                    let cp = self.cp[l.index()];
                    mass /= (1.0 - cp).max(1e-12);
                }
            }
            freq[b.index()] = mass;
        }
        Some(freq)
    }

    /// True when `from -> to` is a back edge of any natural loop.
    fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.forest
            .loops()
            .iter()
            .any(|lp| lp.back_edges.iter().any(|&(t, h)| t == from && h == to))
    }
}

/// Estimates the whole-module static profile. `cls` supplies the
/// direction proofs to promote; pass the output of
/// [`crate::classify_module`] on the same module.
pub fn estimate_profile(module: &Module, cls: &Classification) -> StaticProfile {
    let mut funcs = Vec::new();
    let mut sites = Vec::new();
    let mut unconverged_funcs = Vec::new();

    for (fid, func) in module.iter_functions() {
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        let branches = ClassifiedBranches::analyze(func, &forest);
        let n = cfg.len();

        // Per-block taken probability, proofs first.
        let mut prob = vec![1.0f64; n];
        let mut bias: Vec<Option<(BlockId, BranchId, BiasEstimate)>> = Vec::new();
        for info in branches.branches() {
            let est = match cls.by_site(info.site).map(|s| s.class) {
                Some(DirectionClass::ProvedMonostatic(d)) => BiasEstimate::Exact {
                    num: u64::from(d),
                    den: 1,
                },
                Some(DirectionClass::BoundedBias { num, den }) => BiasEstimate::Exact { num, den },
                _ => BiasEstimate::Heuristic(heuristic_prob(func, info, &forest)),
            };
            prob[info.block.index()] = est.prob();
            bias.push(Some((info.block, info.site, est)));
        }

        let rpo = reverse_postorder(&cfg);
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }

        let mut prop = Propagation {
            cfg: &cfg,
            forest: &forest,
            rpo: &rpo,
            rpo_pos,
            prob: prob.clone(),
            cp: vec![0.0; forest.loops().len()],
            steps: 0,
            budget: default_solve_budget(n),
        };

        // Loops innermost-first (deeper first; ties are fine because a
        // loop never contains a same-depth sibling).
        let mut loop_order: Vec<usize> = (0..forest.loops().len()).collect();
        loop_order.sort_by_key(|&i| std::cmp::Reverse(forest.loops()[i].depth));
        let mut ok = true;
        for li in loop_order {
            let lp = &forest.loops()[li];
            let header = lp.header;
            let Some(local) = prop.propagate(header, Some(LoopId(li as u32))) else {
                ok = false;
                break;
            };
            // Exit-edge mass per unit entering the header; the cyclic
            // probability is its complement.
            let mut exit_mass = 0.0f64;
            for &(from, to) in &lp.exit_edges {
                let succs = cfg.succs(from);
                for (slot, &s) in succs.iter().enumerate() {
                    if s == to {
                        exit_mass += local[from.index()] * prop.slot_prob(from, slot, succs.len());
                    }
                }
            }
            let mut cp = (1.0 - exit_mass).clamp(0.0, 1.0);
            // Proof-less loops are capped; a header with an exact bias
            // proof may claim its exact multiplier (den executions of
            // the test per entry), still finite.
            let header_exact = branches
                .branches()
                .iter()
                .find(|i| i.block == header)
                .and_then(|i| cls.by_site(i.site))
                .map(|s| matches!(s.class, DirectionClass::BoundedBias { .. }))
                .unwrap_or(false);
            if !header_exact {
                cp = cp.min(MAX_HEURISTIC_CP);
            } else if cp >= 1.0 - 1e-12 {
                // Even a "proved" loop may not claim infinity.
                cp = 1.0 - 1e-12;
            }
            prop.cp[li] = cp;
        }

        let freq = if ok {
            prop.propagate(func.entry, None)
        } else {
            None
        };

        match freq {
            Some(bfreq) if bfreq.iter().all(|f| f.is_finite()) => {
                let mut efreq: Vec<Vec<f64>> = Vec::with_capacity(n);
                for b in cfg.blocks() {
                    let succs = cfg.succs(b);
                    let row: Vec<f64> = succs
                        .iter()
                        .enumerate()
                        .map(|(slot, _)| bfreq[b.index()] * prop.slot_prob(b, slot, succs.len()))
                        .collect();
                    efreq.push(row);
                }
                for entry in bias.into_iter().flatten() {
                    let (block, site, est) = entry;
                    sites.push(SiteEstimate {
                        site,
                        func: fid,
                        block,
                        bias: est,
                        freq: bfreq[block.index()],
                    });
                }
                funcs.push(FuncProfile {
                    bfreq,
                    efreq,
                    prob,
                    call_scale: 0.0,
                    converged: true,
                });
            }
            _ => {
                // Fail closed: zero everything, claim nothing.
                funcs.push(FuncProfile {
                    bfreq: vec![0.0; n],
                    efreq: cfg
                        .blocks()
                        .map(|b| vec![0.0; cfg.succs(b).len()])
                        .collect(),
                    prob,
                    call_scale: 0.0,
                    converged: false,
                });
                unconverged_funcs.push(fid);
            }
        }
    }

    // Call-graph scaling: bounded relaxation of entry counts, main = 1.
    let nf = funcs.len();
    let mut scale = vec![0.0f64; nf];
    let main = module.function_by_name("main");
    if let Some(m) = main {
        scale[m.index()] = 1.0;
    }
    for _ in 0..CALL_SCALE_PASSES {
        let mut next = vec![0.0f64; nf];
        if let Some(m) = main {
            next[m.index()] = 1.0;
        }
        for (fid, func) in module.iter_functions() {
            let fp = &funcs[fid.index()];
            if !fp.converged || scale[fid.index()] <= 0.0 {
                continue;
            }
            for (bid, block) in func.iter_blocks() {
                for inst in &block.insts {
                    if let Inst::Call { callee, .. } = inst {
                        if let Some(g) = module.function_by_name(callee) {
                            next[g.index()] += scale[fid.index()] * fp.bfreq[bid.index()];
                        }
                    }
                }
            }
        }
        for v in &mut next {
            *v = v.min(MAX_CALL_SCALE);
        }
        scale = next;
    }
    for (i, fp) in funcs.iter_mut().enumerate() {
        fp.call_scale = scale[i];
    }
    for s in &mut sites {
        s.freq *= scale[s.func.index()].max(if main.is_none() { 1.0 } else { 0.0 });
        if !s.freq.is_finite() {
            s.freq = MAX_CALL_SCALE;
        }
    }

    StaticProfile {
        funcs,
        sites,
        unconverged_funcs,
    }
}

/// The estimate-vs-measured drift gate. Checks `profile` against a
/// measured trace (`stats`) and the direction proofs (`cls`):
///
/// * `BR019` — a site with an *exact* bias estimate whose measured
///   taken-count violates the rational (integer arithmetic, any event
///   count). Exact estimates are proof-promoted, so an honest trace can
///   never fire this: a hit means the trace or the stored estimate was
///   tampered with. Attributed to the site for per-site quarantine.
/// * `BR020` — positive estimated frequency at a site proved
///   unreachable.
/// * `BR021` — a flow-conservation violation inside the stored profile.
/// * `BR022` — one per function whose propagation failed closed.
pub fn static_profile_diags(
    module: &Module,
    cls: &Classification,
    profile: &StaticProfile,
    stats: &TraceStats,
) -> Vec<AnalysisDiag> {
    let mut diags = Vec::new();
    for &fid in &profile.unconverged_funcs {
        diags.push(AnalysisDiag::new(
            DiagCode::EstimateFixpointFailure,
            Loc::block(fid, module.function(fid).entry),
            "frequency propagation failed closed (irreducible flow or blown budget); \
             estimates for this function withheld",
        ));
    }
    for (fid, block, err) in profile.check_conservation(module) {
        diags.push(AnalysisDiag::new(
            DiagCode::EstimateConservationViolation,
            Loc::block(fid, block),
            format!("static profile violates flow conservation by {err:.3e}"),
        ));
    }
    for s in &profile.sites {
        let loc = Loc::term(s.func, s.block);
        if let Some(sc) = cls.by_site(s.site) {
            if !sc.reachable && s.freq > CONSERVATION_EPS {
                diags.push(
                    AnalysisDiag::new(
                        DiagCode::EstimateUnreachableMass,
                        loc,
                        format!(
                            "static profile assigns frequency {:.3} to a branch proved unreachable",
                            s.freq
                        ),
                    )
                    .with_site(s.site),
                );
                continue;
            }
        }
        if let BiasEstimate::Exact { num, den } = s.bias {
            let counts = stats.site(s.site);
            let total = counts.total() as u128;
            if total > 0 && counts.taken as u128 * den as u128 != total * num as u128 {
                diags.push(
                    AnalysisDiag::new(
                        DiagCode::EstimateDriftConflict,
                        loc,
                        format!(
                            "measured {}/{} taken contradicts the exact static estimate {num}/{den}",
                            counts.taken,
                            counts.total(),
                        ),
                    )
                    .with_site(s.site),
                );
            }
        }
    }
    diags
}

/// Mean absolute estimated-vs-measured taken-bias error over the sites
/// the trace actually executed — the `staticprofile` bench's headline
/// number. Returns `(mean_abs_error, sites_compared)`.
pub fn bias_error(profile: &StaticProfile, stats: &TraceStats) -> (f64, usize) {
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for s in &profile.sites {
        let counts = stats.site(s.site);
        if counts.total() == 0 {
            continue;
        }
        let measured = counts.taken as f64 / counts.total() as f64;
        sum += (measured - s.bias.prob()).abs();
        n += 1;
    }
    (if n == 0 { 0.0 } else { sum / n as f64 }, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_module;
    use brepl_ir::{FunctionBuilder, Module, Operand};
    use brepl_trace::{Trace, TraceEvent};

    /// `main` with one counted loop `for i in 0..trip` and one inner
    /// random diamond — one exact header bias, one heuristic site.
    fn counted_loop_module(trip: i64) -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let head = b.new_block();
        let body = b.new_block();
        let inner_t = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        let i = b.reg();
        b.const_int(i, 0);
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(Operand::Reg(i), Operand::imm(trip));
        b.br(c, body, exit); // site 0: exact trip/(trip+1)
        b.switch_to(body);
        let r = b.rand(Operand::imm(2));
        b.br(r, inner_t, latch); // site 1: heuristic
        b.switch_to(inner_t);
        b.jmp(latch);
        b.switch_to(latch);
        b.add(i, Operand::Reg(i), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        m.renumber_branches();
        m
    }

    #[test]
    fn dempster_shafer_combination_laws() {
        // Identity at 0.5, symmetry, reinforcement.
        assert!((combine(0.5, 0.8) - 0.8).abs() < 1e-12);
        assert!((combine(0.8, 0.5) - 0.8).abs() < 1e-12);
        assert!(combine(0.8, 0.8) > 0.8);
        assert!(combine(0.2, 0.2) < 0.2);
        // Opposing evidence of equal strength cancels.
        assert!((combine(0.8, 0.2) - 0.5).abs() < 1e-12);
        // Degenerate input stays defined.
        assert!((combine(0.0, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counted_loop_gets_exact_bias_and_right_frequencies() {
        let m = counted_loop_module(100);
        let cls = classify_module(&m);
        let p = estimate_profile(&m, &cls);
        assert!(p.converged());
        let head = p.by_site(brepl_ir::BranchId(0)).unwrap();
        assert_eq!(head.bias, BiasEstimate::Exact { num: 100, den: 101 });
        // The header runs trip+1 times per program run.
        assert!(
            (head.freq - 101.0).abs() < 1e-6 * 101.0,
            "header freq {} != 101",
            head.freq
        );
        // The inner branch runs once per iteration.
        let inner = p.by_site(brepl_ir::BranchId(1)).unwrap();
        assert!(matches!(inner.bias, BiasEstimate::Heuristic(_)));
        assert!(
            (inner.freq - 100.0).abs() < 1e-6 * 100.0,
            "inner freq {} != 100",
            inner.freq
        );
        assert_eq!(p.counts(), (1, 1));
    }

    #[test]
    fn conservation_holds_and_detects_corruption() {
        let m = counted_loop_module(17);
        let cls = classify_module(&m);
        let mut p = estimate_profile(&m, &cls);
        assert!(p.check_conservation(&m).is_empty());
        // Corrupt one block frequency: the invariant catches it.
        p.funcs[0].bfreq[2] += 1.0;
        assert!(!p.check_conservation(&m).is_empty());
    }

    #[test]
    fn honest_trace_passes_the_drift_gate() {
        let m = counted_loop_module(3);
        let cls = classify_module(&m);
        let p = estimate_profile(&m, &cls);
        // One loop entry: head taken 3/4, inner arbitrary.
        let mut t = Trace::new();
        for n in 0..4u32 {
            t.push(TraceEvent {
                site: brepl_ir::BranchId(0),
                taken: n < 3,
            });
            if n < 3 {
                t.push(TraceEvent {
                    site: brepl_ir::BranchId(1),
                    taken: n % 2 == 0,
                });
            }
        }
        let diags = static_profile_diags(&m, &cls, &p, &t.stats());
        assert!(diags.is_empty(), "unexpected diags: {diags:?}");
    }

    #[test]
    fn forged_estimate_fires_br019_alone() {
        let m = counted_loop_module(3);
        let cls = classify_module(&m);
        let mut p = estimate_profile(&m, &cls);
        // Perturb the exact estimate at the header — the honest trace
        // now contradicts it.
        for s in &mut p.sites {
            if s.site == brepl_ir::BranchId(0) {
                s.bias = BiasEstimate::Exact { num: 1, den: 2 };
            }
        }
        let mut t = Trace::new();
        for n in 0..4u32 {
            t.push(TraceEvent {
                site: brepl_ir::BranchId(0),
                taken: n < 3,
            });
        }
        let diags = static_profile_diags(&m, &cls, &p, &t.stats());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::EstimateDriftConflict);
        assert_eq!(diags[0].site, Some(brepl_ir::BranchId(0)));
    }

    #[test]
    fn heuristic_sites_never_fire_br019() {
        let m = counted_loop_module(3);
        let cls = classify_module(&m);
        let p = estimate_profile(&m, &cls);
        // A wildly drifted heuristic site: all taken although the
        // estimate is near 0.5. Data, not a diagnostic.
        let mut t = Trace::new();
        for _ in 0..100 {
            t.push(TraceEvent {
                site: brepl_ir::BranchId(1),
                taken: true,
            });
        }
        let diags = static_profile_diags(&m, &cls, &p, &t.stats());
        assert!(diags.is_empty(), "heuristic drift must not gate: {diags:?}");
        let (err, n) = bias_error(&p, &t.stats());
        assert_eq!(n, 1);
        assert!(err > 0.3, "drift should be visible as data: {err}");
    }

    #[test]
    fn nested_loops_multiply() {
        // for i in 0..10 { for j in 0..5 { } } — inner header runs
        // 10 * 6 = 60 times, inner body 50 times.
        let mut b = FunctionBuilder::new("main", 0);
        let ohead = b.new_block();
        let obody = b.new_block();
        let ihead = b.new_block();
        let ibody = b.new_block();
        let olatch = b.new_block();
        let exit = b.new_block();
        let i = b.reg();
        let j = b.reg();
        b.const_int(i, 0);
        b.jmp(ohead);
        b.switch_to(ohead);
        let c = b.lt(Operand::Reg(i), Operand::imm(10));
        b.br(c, obody, exit);
        b.switch_to(obody);
        b.const_int(j, 0);
        b.jmp(ihead);
        b.switch_to(ihead);
        let c2 = b.lt(Operand::Reg(j), Operand::imm(5));
        b.br(c2, ibody, olatch);
        b.switch_to(ibody);
        b.add(j, Operand::Reg(j), Operand::imm(1));
        b.jmp(ihead);
        b.switch_to(olatch);
        b.add(i, Operand::Reg(i), Operand::imm(1));
        b.jmp(ohead);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        m.renumber_branches();

        let cls = classify_module(&m);
        let p = estimate_profile(&m, &cls);
        assert!(p.converged());
        assert!(p.check_conservation(&m).is_empty());
        let outer = p.by_site(brepl_ir::BranchId(0)).unwrap();
        let inner = p.by_site(brepl_ir::BranchId(1)).unwrap();
        assert!((outer.freq - 11.0).abs() < 1e-6 * 11.0, "{}", outer.freq);
        assert!((inner.freq - 60.0).abs() < 1e-6 * 60.0, "{}", inner.freq);
    }

    #[test]
    fn call_scaling_multiplies_callee_entries() {
        // main: for i in 0..4 call leaf(); leaf has one branch.
        let mut leaf = FunctionBuilder::new("leaf", 0);
        let t = leaf.new_block();
        let e = leaf.new_block();
        let one = leaf.reg();
        leaf.const_int(one, 1);
        let c = leaf.gt(Operand::Reg(one), Operand::imm(0));
        leaf.br(c, t, e);
        leaf.switch_to(t);
        leaf.ret(None);
        leaf.switch_to(e);
        leaf.ret(None);

        let mut b = FunctionBuilder::new("main", 0);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.reg();
        b.const_int(i, 0);
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(Operand::Reg(i), Operand::imm(4));
        b.br(c, body, exit);
        b.switch_to(body);
        b.call(None, "leaf", vec![]);
        b.add(i, Operand::Reg(i), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.ret(None);

        let mut m = Module::new();
        m.push_function(b.finish());
        m.push_function(leaf.finish());
        m.renumber_branches();

        let cls = classify_module(&m);
        let p = estimate_profile(&m, &cls);
        assert!(p.converged());
        let leaf_fid = m.function_by_name("leaf").unwrap();
        let scale = p.funcs[leaf_fid.index()].call_scale;
        assert!(
            (scale - 4.0).abs() < 1e-6 * 4.0,
            "leaf entries {scale} != 4"
        );
        // The leaf branch site's global frequency is 4 (once per call).
        let leaf_site = p
            .sites
            .iter()
            .find(|s| s.func == leaf_fid)
            .expect("leaf site");
        assert!(
            (leaf_site.freq - 4.0).abs() < 1e-6 * 4.0,
            "{}",
            leaf_site.freq
        );
    }
}
