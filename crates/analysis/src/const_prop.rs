//! Sparse conditional constant propagation over the interval domain.
//!
//! A Wegman–Zadeck-style fixpoint per function: block executability and
//! per-register abstract values ([`AbsVal`]) grow together, so a branch
//! whose condition is proved constant marks only the surviving successor
//! executable, and code behind the dead edge contributes nothing to the
//! join. Branch edges additionally *refine* the compared register (the
//! then-edge of `if i < n` knows `i ∈ (-∞, n-1]`), which is what turns a
//! counted loop's exit test into a provable direction.
//!
//! Loops are handled with standard interval widening (a per-block update
//! counter switches the join to [`Interval::widen`] once a block keeps
//! changing), followed by two descending ("narrowing") sweeps with
//! executability frozen, which recover the bounds widening threw away.
//! The whole fixpoint is metered like the generic worklist solver: a
//! function that exhausts [`default_solve_budget`] reports
//! `converged = false` and clients must fail closed (claim nothing).
//!
//! The abstract semantics mirror `brepl-sim` exactly; see
//! [`crate::interval`] for the arithmetic fine print. Two load-bearing
//! facts from the interpreter: non-parameter registers start at `Int(0)`
//! in every frame, and `Ftoi` always produces an integer (it is the
//! identity on integers).

use std::collections::VecDeque;

use brepl_cfg::Cfg;
use brepl_ir::{
    BlockId, CmpOp, FuncId, Function, Inst, Intrinsic, Module, Operand, Reg, Term, Value,
};

use crate::interval::Interval;
use crate::solver::{default_solve_budget, SolveStats};

/// One register's abstract value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsVal {
    /// No value reaches here (unexecuted code).
    Bot,
    /// Definitely an integer, within the interval.
    Int(Interval),
    /// Anything — possibly a float, possibly any integer.
    Any,
}

impl AbsVal {
    /// Normalizing constructor: an empty interval is no value at all.
    fn int(iv: Interval) -> AbsVal {
        if iv.is_empty() {
            AbsVal::Bot
        } else {
            AbsVal::Int(iv)
        }
    }

    /// The interval, when the value is a known integer.
    pub fn as_interval(&self) -> Option<Interval> {
        match self {
            AbsVal::Int(iv) => Some(*iv),
            _ => None,
        }
    }

    /// Least upper bound.
    fn join(&self, other: &AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Bot, x) | (x, AbsVal::Bot) => x.clone(),
            (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::Int(a.join(b)),
            _ => AbsVal::Any,
        }
    }

    /// Join with widening on the interval component (`old` is the
    /// previous value at a head that keeps changing).
    fn widen(&self, old: &AbsVal) -> AbsVal {
        match (self, old) {
            (AbsVal::Int(new), AbsVal::Int(prev)) => AbsVal::Int(new.join(prev).widen(prev)),
            _ => self.join(old),
        }
    }
}

/// An abstract register file (indexed by [`Reg`]).
pub type Env = Vec<AbsVal>;

/// Per-function result of the fixpoint.
#[derive(Clone, Debug)]
pub struct FuncValues {
    /// Whether each block is abstractly executable. Blocks behind edges
    /// proved dead stay `false` — a *must*-unreachable claim is sound
    /// because executability only ever grows during the fixpoint.
    pub executable: Vec<bool>,
    /// The abstract register file at each executable block's entry
    /// (`None` exactly where `executable` is `false`).
    env_in: Vec<Option<Env>>,
    /// Worklist accounting; `stats.converged == false` means the budget
    /// ran out and **nothing may be claimed** for this function.
    pub stats: SolveStats,
}

impl FuncValues {
    /// Replays the block's instructions from its entry environment and
    /// returns the abstract register file at the terminator, or `None`
    /// for unexecutable blocks or a non-converged function.
    pub fn term_env(&self, func: &Function, block: BlockId) -> Option<Env> {
        if !self.stats.converged {
            return None;
        }
        let mut env = self.env_in[block.index()].clone()?;
        for inst in &func.block(block).insts {
            transfer_inst(inst, &mut env);
        }
        Some(env)
    }

    /// The abstract value of the block's branch condition at its
    /// terminator ([`Self::term_env`] + operand evaluation), or `None`
    /// when the block is unexecutable, the function did not converge, or
    /// the terminator is not a branch.
    pub fn branch_condition_value(&self, func: &Function, block: BlockId) -> Option<AbsVal> {
        let env = self.term_env(func, block)?;
        match &func.block(block).term {
            Term::Br { cond, .. } => Some(eval_operand(*cond, &env)),
            _ => None,
        }
    }

    /// The entry environment of `block`, if executable.
    pub fn entry_env(&self, block: BlockId) -> Option<&[AbsVal]> {
        self.env_in[block.index()].as_deref()
    }
}

/// Whole-module constant propagation: per-function fixpoints plus a
/// call-graph reachability sweep rooted at `main`.
#[derive(Clone, Debug)]
pub struct ConstProp {
    /// Per-function values, indexed by [`FuncId`].
    pub funcs: Vec<FuncValues>,
    /// Functions reachable from the entry through calls in abstractly
    /// executable blocks. Unreachable functions keep their (sound,
    /// entry-agnostic) per-function values, but every block in them is
    /// additionally known dead at module level.
    pub reachable_funcs: Vec<bool>,
    /// True only if every function's fixpoint converged in budget.
    pub converged: bool,
}

impl ConstProp {
    /// Runs the analysis on `module`.
    ///
    /// Every function is analyzed once with parameters at [`AbsVal::Any`]
    /// (the context-insensitive summary), so the result is sound for any
    /// call site. Reachability then starts from `main` — or from every
    /// function, if there is no `main` — and follows `Call` instructions
    /// in executable blocks only.
    pub fn analyze(module: &Module) -> ConstProp {
        let mut funcs = Vec::with_capacity(module.function_count());
        for (_, f) in module.iter_functions() {
            funcs.push(analyze_function(f));
        }
        let converged = funcs.iter().all(|f| f.stats.converged);

        let mut reachable = vec![false; module.function_count()];
        let mut queue: VecDeque<FuncId> = VecDeque::new();
        match module.function_by_name("main") {
            Some(entry) => {
                reachable[entry.index()] = true;
                queue.push_back(entry);
            }
            None => {
                for (fid, _) in module.iter_functions() {
                    reachable[fid.index()] = true;
                    queue.push_back(fid);
                }
            }
        }
        while let Some(fid) = queue.pop_front() {
            let f = module.function(fid);
            let values = &funcs[fid.index()];
            for (bid, block) in f.iter_blocks() {
                // A non-converged function claims nothing, so treat all
                // its blocks as executable for call discovery.
                if values.stats.converged && !values.executable[bid.index()] {
                    continue;
                }
                for inst in &block.insts {
                    if let Inst::Call { callee, .. } = inst {
                        if let Some(target) = module.function_by_name(callee) {
                            if !reachable[target.index()] {
                                reachable[target.index()] = true;
                                queue.push_back(target);
                            }
                        }
                    }
                }
            }
        }
        ConstProp {
            funcs,
            reachable_funcs: reachable,
            converged,
        }
    }

    /// Is `block` of `fid` executable at module level (function reachable
    /// *and* block executable in its fixpoint)? Non-converged functions
    /// conservatively answer `true` for every block.
    pub fn block_live(&self, fid: FuncId, block: BlockId) -> bool {
        if !self.reachable_funcs[fid.index()] {
            return false;
        }
        let f = &self.funcs[fid.index()];
        !f.stats.converged || f.executable[block.index()]
    }
}

/// Number of changing joins at a block before the join switches to
/// widening. Small enough to terminate fast, large enough that short
/// ascending chains (0 → [0,0] → [0,1] → …) settle without widening.
const WIDEN_AFTER: u32 = 3;

/// Descending sweeps after the widened fixpoint.
const NARROW_SWEEPS: usize = 2;

fn analyze_function(func: &Function) -> FuncValues {
    let cfg = Cfg::new(func);
    let n_blocks = func.blocks.len();
    let n_regs = func.n_regs as usize;
    let budget = default_solve_budget(n_blocks);

    // Entry environment: parameters are caller-controlled, every other
    // register is zero-initialized by the interpreter's frame setup.
    let mut entry_env: Env = Vec::with_capacity(n_regs);
    for r in 0..n_regs {
        if (r as u32) < func.n_params {
            entry_env.push(AbsVal::Any);
        } else {
            entry_env.push(AbsVal::Int(Interval::constant(0)));
        }
    }

    // Widening points: targets of RPO-retreating edges. Every CFG cycle
    // contains such an edge (its minimal-RPO vertex receives one), so
    // widening there alone guarantees termination — and loop *bodies*
    // keep their precise joined envs, which is what lets the descending
    // sweeps recover tight bounds afterwards.
    let order = brepl_cfg::reverse_postorder(&cfg);
    let mut rpo_index = vec![usize::MAX; n_blocks];
    for (i, &b) in order.iter().enumerate() {
        rpo_index[b.index()] = i;
    }
    let mut widen_point = vec![false; n_blocks];
    for &b in &order {
        for &s in cfg.succs(b) {
            if rpo_index[s.index()] <= rpo_index[b.index()] {
                widen_point[s.index()] = true;
            }
        }
    }

    let mut executable = vec![false; n_blocks];
    let mut env_in: Vec<Option<Env>> = vec![None; n_blocks];
    let mut join_counts = vec![0u32; n_blocks];
    let mut on_list = vec![false; n_blocks];
    let mut worklist: VecDeque<BlockId> = VecDeque::new();

    executable[func.entry.index()] = true;
    env_in[func.entry.index()] = Some(entry_env);
    worklist.push_back(func.entry);
    on_list[func.entry.index()] = true;

    let mut steps: u64 = 0;
    let mut converged = true;
    while let Some(b) = worklist.pop_front() {
        on_list[b.index()] = false;
        steps += 1;
        if steps > budget {
            converged = false;
            break;
        }
        let mut env = env_in[b.index()].clone().expect("executable block has env");
        let block = func.block(b);
        for inst in &block.insts {
            transfer_inst(inst, &mut env);
        }
        // Propagate along executable out-edges, with branch refinement.
        let mut propagate = |succ: BlockId, env: Env, worklist: &mut VecDeque<BlockId>| {
            let changed = match &mut env_in[succ.index()] {
                slot @ None => {
                    *slot = Some(env);
                    executable[succ.index()] = true;
                    true
                }
                Some(old) => {
                    let widen =
                        widen_point[succ.index()] && join_counts[succ.index()] >= WIDEN_AFTER;
                    let mut any = false;
                    for (o, n) in old.iter_mut().zip(env) {
                        let merged = if widen { n.widen(o) } else { n.join(o) };
                        if merged != *o {
                            *o = merged;
                            any = true;
                        }
                    }
                    if any {
                        join_counts[succ.index()] += 1;
                    }
                    any
                }
            };
            if changed && !on_list[succ.index()] {
                on_list[succ.index()] = true;
                worklist.push_back(succ);
            }
        };
        match &block.term {
            Term::Ret { .. } => {}
            Term::Jmp { target } => propagate(*target, env, &mut worklist),
            Term::Br {
                cond, then_, else_, ..
            } => {
                let cv = eval_operand(*cond, &env);
                let (can_take, can_fall) = branch_feasibility(&cv);
                let cond_reg = cond.reg();
                let refinement = cond_reg.and_then(|r| edge_refinement(block, r));
                if can_take {
                    let e = refined_env(&env, cond_reg, &cv, &refinement, true);
                    propagate(*then_, e, &mut worklist);
                }
                if can_fall {
                    let e = refined_env(&env, cond_reg, &cv, &refinement, false);
                    propagate(*else_, e, &mut worklist);
                }
            }
        }
    }

    let mut values = FuncValues {
        executable,
        env_in,
        stats: SolveStats { steps, converged },
    };
    if converged {
        narrow(func, &cfg, &mut values);
    }
    values
}

/// Descending sweeps: re-apply the (monotone) transfer system from the
/// widened post-fixpoint in reverse-postorder, with executability frozen.
/// Every intermediate assignment stays above the least fixpoint, so the
/// tightened bounds remain sound; see the module docs.
fn narrow(func: &Function, cfg: &Cfg, values: &mut FuncValues) {
    let order = brepl_cfg::reverse_postorder(cfg);
    for _ in 0..NARROW_SWEEPS {
        for &b in &order {
            if !values.executable[b.index()] {
                continue;
            }
            if b == func.entry {
                continue; // the boundary env never changes
            }
            // Recompute the entry env as the join over executable
            // predecessor edges of their refined exit envs.
            let mut acc: Option<Env> = None;
            for &p in cfg.preds(b) {
                if !values.executable[p.index()] {
                    continue;
                }
                let Some(pin) = values.env_in[p.index()].as_ref() else {
                    continue;
                };
                if let Some(c) = edge_env(func, p, b, pin) {
                    acc = Some(match acc {
                        None => c,
                        Some(a) => join_envs(a, c),
                    });
                }
            }
            if let Some(new_in) = acc {
                values.env_in[b.index()] = Some(new_in);
            }
        }
    }
}

/// The environment flowing from predecessor `p` into `b`: `p`'s entry
/// environment `pin` pushed through its instructions, with branch-edge
/// refinement applied. `None` when no feasible edge `p -> b` survives
/// abstract evaluation (the branch condition rules the edge out, or `p`
/// returns).
pub(crate) fn edge_env(func: &Function, p: BlockId, b: BlockId, pin: &Env) -> Option<Env> {
    let mut env = pin.clone();
    let pblock = func.block(p);
    for inst in &pblock.insts {
        transfer_inst(inst, &mut env);
    }
    match &pblock.term {
        Term::Jmp { target } if *target == b => Some(env),
        Term::Jmp { .. } => None,
        Term::Br {
            cond, then_, else_, ..
        } => {
            let cv = eval_operand(*cond, &env);
            let (can_take, can_fall) = branch_feasibility(&cv);
            let cond_reg = cond.reg();
            let refinement = cond_reg.and_then(|r| edge_refinement(pblock, r));
            // The edge may target `b` as then, else, or both.
            let mut merged: Option<Env> = None;
            if *then_ == b && can_take {
                merged = Some(refined_env(&env, cond_reg, &cv, &refinement, true));
            }
            if *else_ == b && can_fall {
                let e = refined_env(&env, cond_reg, &cv, &refinement, false);
                merged = Some(match merged {
                    None => e,
                    Some(m) => join_envs(m, e),
                });
            }
            merged
        }
        Term::Ret { .. } => None,
    }
}

fn join_envs(mut a: Env, b: Env) -> Env {
    for (x, y) in a.iter_mut().zip(b) {
        *x = x.join(&y);
    }
    a
}

/// Which successors a branch on `cond` can reach.
pub(crate) fn branch_feasibility(cond: &AbsVal) -> (bool, bool) {
    match cond {
        AbsVal::Bot => (false, false),
        AbsVal::Int(iv) => {
            if iv.is_empty() {
                (false, false)
            } else if !iv.contains(0) {
                (true, false)
            } else if iv.as_constant() == Some(0) {
                (false, true)
            } else {
                (true, true)
            }
        }
        AbsVal::Any => (true, true),
    }
}

/// A comparison feeding the branch condition whose operand register may
/// be refined along the edges: `(reg, op, k)` with the predicate
/// normalized to `reg op k`.
pub(crate) struct EdgeRefinement {
    pub(crate) reg: Reg,
    pub(crate) op: CmpOp,
    pub(crate) k: i64,
}

/// Finds the in-block `Cmp` defining `cond` (scanning backwards, giving
/// up on an intervening redefinition of the condition register), and
/// checks its compared register is not redefined between the compare and
/// the terminator — the validity condition for edge refinement in a
/// mutable-register IR.
pub(crate) fn edge_refinement(block: &brepl_ir::Block, cond: Reg) -> Option<EdgeRefinement> {
    let mut cmp_at: Option<usize> = None;
    for (i, inst) in block.insts.iter().enumerate().rev() {
        if inst.def() == Some(cond) {
            if matches!(inst, Inst::Cmp { .. }) {
                cmp_at = Some(i);
            }
            break;
        }
    }
    let i = cmp_at?;
    let Inst::Cmp { op, lhs, rhs, .. } = &block.insts[i] else {
        return None;
    };
    let (reg, op, k) = match (lhs, rhs) {
        (Operand::Reg(r), Operand::Imm(Value::Int(k))) => (*r, *op, *k),
        (Operand::Imm(Value::Int(k)), Operand::Reg(r)) => (*r, op.swapped(), *k),
        _ => return None,
    };
    // The refined register must still hold the compared value at the
    // branch.
    for inst in &block.insts[i + 1..] {
        if inst.def() == Some(reg) {
            return None;
        }
    }
    Some(EdgeRefinement { reg, op, k })
}

/// The environment flowing along one edge of a branch: the condition
/// register is restricted to truthy/falsy, and the compared register (if
/// the refinement is valid) is restricted by the predicate.
pub(crate) fn refined_env(
    env: &Env,
    cond: Option<Reg>,
    cond_val: &AbsVal,
    refinement: &Option<EdgeRefinement>,
    taken: bool,
) -> Env {
    let mut out = env.clone();
    if let (Some(cond), AbsVal::Int(iv)) = (cond, cond_val) {
        let refined = if taken {
            iv.refine_cmp(CmpOp::Ne, 0, true)
        } else {
            iv.refine_cmp(CmpOp::Eq, 0, true)
        };
        out[cond.index()] = AbsVal::int(refined);
    }
    if let Some(r) = refinement {
        if let AbsVal::Int(iv) = &out[r.reg.index()] {
            out[r.reg.index()] = AbsVal::int(iv.refine_cmp(r.op, r.k, taken));
        }
    }
    out
}

/// Abstract evaluation of an operand.
pub(crate) fn eval_operand(op: Operand, env: &Env) -> AbsVal {
    match op {
        Operand::Imm(Value::Int(v)) => AbsVal::Int(Interval::constant(v)),
        Operand::Imm(Value::Float(_)) => AbsVal::Any,
        Operand::Reg(r) => env.get(r.index()).cloned().unwrap_or(AbsVal::Any),
    }
}

/// Abstract execution of one instruction, mirroring `brepl-sim`.
pub(crate) fn transfer_inst(inst: &Inst, env: &mut Env) {
    let result: AbsVal = match inst {
        Inst::Const { value, .. } => match value {
            Value::Int(v) => AbsVal::Int(Interval::constant(*v)),
            Value::Float(_) => AbsVal::Any,
        },
        Inst::Copy { src, .. } => eval_operand(*src, env),
        Inst::Bin { op, lhs, rhs, .. } => {
            match (eval_operand(*lhs, env), eval_operand(*rhs, env)) {
                (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::int(Interval::binop(*op, &a, &b)),
                (AbsVal::Bot, _) | (_, AbsVal::Bot) => AbsVal::Bot,
                _ => AbsVal::Any,
            }
        }
        Inst::Cmp { op, lhs, rhs, .. } => {
            // The interpreter always produces Int(0|1) (or traps, which
            // aborts the run before the result is observable).
            match (eval_operand(*lhs, env), eval_operand(*rhs, env)) {
                (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::int(Interval::cmp(*op, &a, &b)),
                (AbsVal::Bot, _) | (_, AbsVal::Bot) => AbsVal::Bot,
                _ => AbsVal::Int(Interval::range(0, 1)),
            }
        }
        Inst::Ftoi { src, .. } => match eval_operand(*src, env) {
            // Identity on integers; any float truncates to some integer.
            AbsVal::Int(iv) => AbsVal::Int(iv),
            AbsVal::Bot => AbsVal::Bot,
            AbsVal::Any => AbsVal::Int(Interval::top()),
        },
        Inst::Itof { .. } => AbsVal::Any,
        Inst::Load { .. } => AbsVal::Any,
        Inst::Store { .. } => return,
        Inst::Alloc { .. } => AbsVal::Any,
        Inst::Call { dst, .. } => match dst {
            Some(_) => AbsVal::Any,
            None => return,
        },
        Inst::Intrin {
            dst, which, args, ..
        } => {
            let v = match which {
                // `out` writes Int(0) into its (optional) destination.
                Intrinsic::Out => AbsVal::Int(Interval::constant(0)),
                // Input values come off the tape (or Int(-1) when empty)
                // and may be floats.
                Intrinsic::In => AbsVal::Any,
                Intrinsic::Sqrt => AbsVal::Any,
                // rand(b) yields [0, b-1]; a non-positive bound traps.
                Intrinsic::Rand => match args.first().map(|a| eval_operand(*a, env)) {
                    Some(AbsVal::Int(b)) if !b.is_empty() => {
                        AbsVal::int(Interval::range(0, b.hi_clamped().saturating_sub(1).max(0)))
                    }
                    _ => AbsVal::Int(Interval::top()),
                },
            };
            match dst {
                Some(_) => v,
                None => return,
            }
        }
    };
    if let Some(dst) = inst.def() {
        if let Some(slot) = env.get_mut(dst.index()) {
            *slot = result;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::FunctionBuilder;

    /// `for i in 0..n { if i < n { .. } }` — the inner test is provably
    /// always true once edge refinement narrows `i` inside the loop.
    fn counted_loop(trip: i64) -> Function {
        let mut b = FunctionBuilder::new("main", 0);
        let i = b.reg();
        b.const_int(i, 0);
        let head = b.new_block();
        let body = b.new_block();
        let inner_t = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(i.into(), Operand::imm(trip));
        b.br(c, body, exit);
        b.switch_to(body);
        let c2 = b.lt(i.into(), Operand::imm(trip));
        b.br(c2, inner_t, latch);
        b.switch_to(inner_t);
        b.out(i.into());
        b.jmp(latch);
        b.switch_to(latch);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn widening_and_narrowing_bound_a_counted_loop() {
        let f = counted_loop(100);
        let v = analyze_function(&f);
        assert!(v.stats.converged);
        // Every block is reachable.
        assert!(v.executable.iter().all(|&e| e));
        // At the loop head, i ∈ [0, 100] after narrowing (0 from entry,
        // up to 100 from the latch increment of a body-capped i).
        let head = BlockId(1);
        let env = v.entry_env(head).unwrap();
        let iv = env[0].as_interval().expect("i is an integer");
        assert!(iv.subset_of(&Interval::range(0, 100)), "head i = {iv}");
        // In the body, the branch-edge refinement caps i at 99, so the
        // duplicated test is provably true.
        let body = BlockId(2);
        let env = v.entry_env(body).unwrap();
        let iv = env[0].as_interval().unwrap();
        assert!(iv.subset_of(&Interval::range(0, 99)), "body i = {iv}");
    }

    #[test]
    fn constant_branch_kills_the_dead_edge() {
        let mut b = FunctionBuilder::new("main", 0);
        let x = b.reg();
        b.const_int(x, 7);
        let t = b.new_block();
        let e = b.new_block();
        let c = b.gt(x.into(), Operand::imm(3));
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let f = b.finish();
        let v = analyze_function(&f);
        assert!(v.stats.converged);
        assert!(v.executable[t.index()], "taken edge lives");
        assert!(!v.executable[e.index()], "fallthrough edge proved dead");
    }

    #[test]
    fn params_are_unknown_and_zero_init_is_used() {
        let mut b = FunctionBuilder::new("f", 1);
        let p = Reg(0);
        let z = b.reg();
        let s = b.reg();
        b.add(s, p.into(), z.into());
        b.ret(Some(s.into()));
        let f = b.finish();
        let v = analyze_function(&f);
        let entry = f.entry;
        let env = v.entry_env(entry).unwrap();
        assert_eq!(env[p.index()], AbsVal::Any);
        // Unwritten non-param registers are Int(0) per frame setup.
        assert_eq!(env[z.index()], AbsVal::Int(Interval::constant(0)));
    }

    #[test]
    fn rand_is_bounded_and_loads_are_not() {
        let mut b = FunctionBuilder::new("main", 0);
        let r = b.rand(Operand::imm(6));
        let c = b.lt(r.into(), Operand::imm(6));
        let t = b.new_block();
        let e = b.new_block();
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let f = b.finish();
        let v = analyze_function(&f);
        assert!(v.executable[t.index()]);
        assert!(!v.executable[e.index()], "rand(6) < 6 is provably true");
    }

    #[test]
    fn call_graph_reachability_starts_at_main() {
        let mut helper = FunctionBuilder::new("helper", 0);
        helper.ret(None);
        let mut dead = FunctionBuilder::new("dead", 0);
        dead.ret(None);
        let mut main = FunctionBuilder::new("main", 0);
        main.call(None, "helper", vec![]);
        main.ret(None);
        let mut m = Module::new();
        let f_help = m.push_function(helper.finish());
        let f_dead = m.push_function(dead.finish());
        let f_main = m.push_function(main.finish());
        let cp = ConstProp::analyze(&m);
        assert!(cp.reachable_funcs[f_main.index()]);
        assert!(cp.reachable_funcs[f_help.index()]);
        assert!(!cp.reachable_funcs[f_dead.index()]);
        assert!(cp.block_live(f_main, m.function(f_main).entry));
        assert!(!cp.block_live(f_dead, m.function(f_dead).entry));
    }
}
