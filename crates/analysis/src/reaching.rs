//! Reaching definitions (forward, may).
//!
//! The fact universe is the set of *definition sites*: one bit per
//! register-writing instruction, plus one pseudo-definition per function
//! parameter (parameters are defined at function entry). A definition
//! reaches a point when some path from it to the point contains no other
//! write to the same register.

use brepl_cfg::Cfg;
use brepl_ir::{BlockId, Function, Reg};

use crate::bitset::BitSet;
use crate::solver::{solve, Direction, GenKill, Meet};

/// One definition site in the fact universe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefSite {
    /// The register written.
    pub reg: Reg,
    /// The writing instruction as `(block, instruction index)`, or `None`
    /// for the pseudo-definition of a parameter at function entry.
    pub site: Option<(BlockId, usize)>,
}

/// The reaching-definitions solution for one function.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    /// The definition-site universe; bit `i` refers to `sites[i]`.
    pub sites: Vec<DefSite>,
    /// Definitions reaching each block's entry.
    pub reach_in: Vec<BitSet>,
    /// Definitions reaching each block's exit.
    pub reach_out: Vec<BitSet>,
    defs_of: Vec<Vec<usize>>,
}

impl ReachingDefs {
    /// The universe indices of all definitions of `reg`.
    pub fn defs_of(&self, reg: Reg) -> &[usize] {
        &self.defs_of[reg.index()]
    }

    /// Definitions of `reg` reaching the entry of `b`, as site descriptors.
    pub fn reaching_defs_of(&self, b: BlockId, reg: Reg) -> Vec<DefSite> {
        self.defs_of(reg)
            .iter()
            .copied()
            .filter(|&i| self.reach_in[b.index()].contains(i))
            .map(|i| self.sites[i])
            .collect()
    }
}

/// Computes reaching definitions for `func` over its CFG.
pub fn reaching_defs(func: &Function, cfg: &Cfg) -> ReachingDefs {
    // Enumerate the universe: parameter pseudo-defs first, then every
    // register-writing instruction in (block, index) order.
    let mut sites = Vec::new();
    let mut defs_of: Vec<Vec<usize>> = vec![Vec::new(); func.n_regs as usize];
    let mut site_index = std::collections::HashMap::new();
    for p in 0..func.n_params {
        let reg = Reg(p);
        defs_of[reg.index()].push(sites.len());
        sites.push(DefSite { reg, site: None });
    }
    for (bid, block) in func.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(reg) = inst.def() {
                defs_of[reg.index()].push(sites.len());
                site_index.insert((bid, i), sites.len());
                sites.push(DefSite {
                    reg,
                    site: Some((bid, i)),
                });
            }
        }
    }

    let mut p = GenKill::new(Direction::Forward, Meet::Union, cfg.len(), sites.len());
    // Parameters reach the entry boundary.
    for i in 0..func.n_params as usize {
        p.boundary.insert(i);
    }
    for (bid, block) in func.iter_blocks() {
        // Walk forward remembering the last def of each register: the last
        // one is generated, every other def of a locally-written register
        // is killed.
        let mut last_def: Vec<Option<usize>> = vec![None; func.n_regs as usize];
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(reg) = inst.def() {
                last_def[reg.index()] = Some(site_index[&(bid, i)]);
            }
        }
        let gen = &mut p.gen[bid.index()];
        let kill = &mut p.kill[bid.index()];
        for (reg_idx, last) in last_def.iter().enumerate() {
            if let Some(idx) = last {
                gen.insert(*idx);
                for &d in &defs_of[reg_idx] {
                    if d != *idx {
                        kill.insert(d);
                    }
                }
            }
        }
    }

    let sol = solve(cfg, &p);
    ReachingDefs {
        sites,
        reach_in: sol.entry,
        reach_out: sol.exit,
        defs_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};

    #[test]
    fn both_arms_reach_the_join() {
        // x = 1 in one arm, x = 2 in the other: both defs reach the join,
        // and the entry def of the parameter is killed on both paths.
        let mut b = FunctionBuilder::new("f", 1);
        let p0 = b.param(0);
        let x = b.reg();
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.gt(p0.into(), Operand::imm(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.const_int(x, 1);
        b.jmp(j);
        b.switch_to(e);
        b.const_int(x, 2);
        b.jmp(j);
        b.switch_to(j);
        b.ret(Some(x.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let rd = reaching_defs(&f, &cfg);

        let at_join = rd.reaching_defs_of(j, x);
        assert_eq!(at_join.len(), 2);
        assert!(at_join.iter().all(|d| d.site.is_some()));
        // The parameter's pseudo-def reaches everywhere (it is never
        // overwritten).
        assert_eq!(
            rd.reaching_defs_of(j, p0),
            vec![DefSite {
                reg: p0,
                site: None
            }]
        );
    }

    #[test]
    fn local_redefinition_kills_upstream() {
        // Entry defines x, next block redefines it: only the redefinition
        // reaches the exit.
        let mut b = FunctionBuilder::new("f", 0);
        let x = b.reg();
        let mid = b.new_block();
        let end = b.new_block();
        b.const_int(x, 1);
        b.jmp(mid);
        b.switch_to(mid);
        b.const_int(x, 2);
        b.jmp(end);
        b.switch_to(end);
        b.ret(Some(x.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let rd = reaching_defs(&f, &cfg);
        let at_end = rd.reaching_defs_of(end, x);
        assert_eq!(
            at_end,
            vec![DefSite {
                reg: x,
                site: Some((mid, 0))
            }]
        );
    }

    #[test]
    fn loop_body_def_reaches_its_own_entry() {
        // i = 0; loop { i = i + 1 }: both the init and the increment reach
        // the loop head.
        let mut b = FunctionBuilder::new("f", 1);
        let n = b.param(0);
        let i = b.reg();
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.const_int(i, 0);
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(i.into(), n.into());
        b.br(c, body, exit);
        b.switch_to(body);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.ret(Some(i.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let rd = reaching_defs(&f, &cfg);
        assert_eq!(rd.reaching_defs_of(head, i).len(), 2);
        assert_eq!(rd.defs_of(i).len(), 2);
    }
}
