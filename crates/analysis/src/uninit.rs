//! Use-before-def detection via definitely-assigned registers (forward,
//! must).
//!
//! A register is *definitely assigned* at a point when every path from the
//! function entry writes it before that point; parameters are assigned at
//! entry. A read of a register that is not definitely assigned is reported.
//! The simulator zero-initializes the whole register file, so such a read
//! is well-defined at run time — the finding is a code-quality warning
//! (and, on replicated modules, a cheap detector for register renames that
//! corrupt dataflow), not an error.

use brepl_cfg::Cfg;
use brepl_ir::{BlockId, Function, InstIdx, Reg};

use crate::liveness::term_uses;
use crate::solver::{solve, Direction, GenKill, Meet};

/// One read of a register that is not definitely assigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UseBeforeDef {
    /// The block containing the read.
    pub block: BlockId,
    /// The reading instruction (or terminator).
    pub inst: InstIdx,
    /// The register read.
    pub reg: Reg,
}

/// Finds every use of a not-definitely-assigned register in `func`.
/// Unreachable blocks are skipped (no execution reads them).
pub fn use_before_def(func: &Function, cfg: &Cfg) -> Vec<UseBeforeDef> {
    let n_regs = func.n_regs as usize;
    let mut p = GenKill::new(Direction::Forward, Meet::Intersect, cfg.len(), n_regs);
    for i in 0..func.n_params as usize {
        p.boundary.insert(i);
    }
    for (bid, block) in func.iter_blocks() {
        for inst in &block.insts {
            if let Some(d) = inst.def() {
                p.gen[bid.index()].insert(d.index());
            }
        }
    }
    let sol = solve(cfg, &p);

    let reachable = cfg.reachable();
    let mut findings = Vec::new();
    for (bid, block) in func.iter_blocks() {
        if !reachable[bid.index()] {
            continue;
        }
        let mut assigned = sol.entry[bid.index()].clone();
        for (i, inst) in block.insts.iter().enumerate() {
            inst.for_each_use(|o| {
                if let Some(r) = o.reg() {
                    if !assigned.contains(r.index()) {
                        findings.push(UseBeforeDef {
                            block: bid,
                            inst: InstIdx::Inst(i),
                            reg: r,
                        });
                    }
                }
            });
            if let Some(d) = inst.def() {
                assigned.insert(d.index());
            }
        }
        term_uses(&block.term, |r| {
            if !assigned.contains(r.index()) {
                findings.push(UseBeforeDef {
                    block: bid,
                    inst: InstIdx::Term,
                    reg: r,
                });
            }
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};

    #[test]
    fn read_of_unwritten_register_is_flagged() {
        let mut b = FunctionBuilder::new("f", 0);
        let x = b.reg();
        let y = b.reg();
        b.add(y, x.into(), Operand::imm(1)); // x never written
        b.ret(Some(y.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let found = use_before_def(&f, &cfg);
        assert_eq!(
            found,
            vec![UseBeforeDef {
                block: BlockId(0),
                inst: InstIdx::Inst(0),
                reg: x,
            }]
        );
    }

    #[test]
    fn one_arm_assignment_is_flagged_at_join() {
        // Only the then-arm writes x; reading it at the join is a maybe-
        // uninitialized read (must-analysis).
        let mut b = FunctionBuilder::new("f", 1);
        let p0 = b.param(0);
        let x = b.reg();
        let t = b.new_block();
        let j = b.new_block();
        let c = b.gt(p0.into(), Operand::imm(0));
        b.br(c, t, j);
        b.switch_to(t);
        b.const_int(x, 1);
        b.jmp(j);
        b.switch_to(j);
        b.ret(Some(x.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let found = use_before_def(&f, &cfg);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].inst, InstIdx::Term);
        assert_eq!(found[0].reg, x);
    }

    #[test]
    fn params_and_dominating_defs_are_clean() {
        let mut b = FunctionBuilder::new("f", 1);
        let p0 = b.param(0);
        let x = b.reg();
        let next = b.new_block();
        b.const_int(x, 3);
        b.jmp(next);
        b.switch_to(next);
        let y = b.reg();
        b.add(y, p0.into(), x.into());
        b.ret(Some(y.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert!(use_before_def(&f, &cfg).is_empty());
    }

    #[test]
    fn unreachable_blocks_are_skipped() {
        let mut b = FunctionBuilder::new("f", 0);
        let x = b.reg();
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(Some(x.into())); // reads x, but can never execute
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert!(use_before_def(&f, &cfg).is_empty());
    }
}
