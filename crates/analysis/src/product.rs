//! The product automaton of a replicated function and a branch machine.
//!
//! This module carries the *witness-independent* half of the validation
//! story. Its inputs deliberately exclude the `ReplicaMap`:
//!
//! * [`MachineTable`] — the plain transition table of a branch machine, as
//!   planned *before* replication ran (the transform's input, not its
//!   output);
//! * the replicated module itself and its branch **provenance** (the
//!   mechanical `new site -> original site` map produced by branch
//!   renumbering, independent of the replicator's bookkeeping);
//! * the shipped [`StaticPrediction`] table.
//!
//! [`solve_site_product`] explores the product graph `(replica block ×
//! machine state)` of one machine-controlled site: starting from the
//! function entry in the machine's initial state, every CFG edge is the
//! identity on the machine state *except* the two legs of a replica of the
//! controlled site, which step the machine by its taken/not-taken
//! transition, and edges re-entering a replica-holding loop from a
//! non-replica block outside it, which reset the machine to its initial
//! state (history is pinned in the program counter, so such re-entries
//! restart at the initial copy; a replica's own legs instead route
//! directly to the correct state copy and carry the state). The result —
//! the exact set of machine states under which
//! each replica branch is reachable — is what [`crate::check_history`]
//! judges and what the static cost model folds frequencies through.

use std::collections::BTreeMap;

use brepl_cfg::{product_reachable, Cfg, DomTree, LoopForest, ProductReach};
use brepl_ir::{BlockId, BranchId, FuncId, Module, Term};

/// One state of a [`MachineTable`]: the prediction it pins and where the
/// machine goes on each outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableState {
    /// The direction predicted while in this state.
    pub predict: bool,
    /// Next state index when the branch is taken.
    pub on_taken: usize,
    /// Next state index when the branch is not taken.
    pub on_not_taken: usize,
}

/// A branch machine reduced to its transition table — predictions and
/// transitions only, no pattern labels, no replication bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineTable {
    /// The states; indices are the state ids used by the transitions.
    pub states: Vec<TableState>,
    /// The initial state index.
    pub initial: usize,
}

impl MachineTable {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the table has no states (always malformed).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The transition function.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range; validate first.
    pub fn next(&self, state: usize, taken: bool) -> usize {
        let s = &self.states[state];
        if taken {
            s.on_taken
        } else {
            s.on_not_taken
        }
    }

    /// Checks the table is well formed: non-empty, initial state and every
    /// transition in range.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformation.
    pub fn validate(&self) -> Result<(), String> {
        if self.states.is_empty() {
            return Err("machine table has no states".into());
        }
        if self.initial >= self.states.len() {
            return Err(format!(
                "initial state {} out of range (machine has {} states)",
                self.initial,
                self.states.len()
            ));
        }
        for (i, s) in self.states.iter().enumerate() {
            if s.on_taken >= self.states.len() || s.on_not_taken >= self.states.len() {
                return Err(format!(
                    "state {i} transitions to ({}, {}) but the machine has {} states",
                    s.on_taken,
                    s.on_not_taken,
                    self.states.len()
                ));
            }
        }
        Ok(())
    }
}

/// Which original branch sites are history-encoded, and by which machine —
/// assembled from the replication *plan* (see
/// `ReplicationPlan::history_spec` in `brepl-core`), never from the
/// replica-map witness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistorySpec {
    /// Per original-site machine tables, in site order.
    pub machines: BTreeMap<BranchId, MachineTable>,
}

impl HistorySpec {
    /// An empty spec (nothing is history-encoded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `site` as controlled by `table`.
    pub fn insert(&mut self, site: BranchId, table: MachineTable) {
        self.machines.insert(site, table);
    }

    /// The table controlling `site`, if any.
    pub fn get(&self, site: BranchId) -> Option<&MachineTable> {
        self.machines.get(&site)
    }

    /// Number of machine-controlled sites.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when no site is machine-controlled.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }
}

/// Node cap for one site's product exploration. Replication itself caps
/// loop products at 512 states, so any real function stays far below this;
/// hitting the cap means a runaway input and is reported as `BR012`.
pub const MAX_PRODUCT_NODES: usize = 1 << 22;

/// The solved product of one machine-controlled site: for every replica
/// branch of the site, the machine states under which it executes.
#[derive(Clone, Debug)]
pub struct ProductSolution {
    /// The function holding the site's replicas.
    pub func: FuncId,
    /// Per-block reachable machine states (the product fixpoint).
    pub reach: ProductReach,
    /// The site's replica branches as `(block, new site id)`, in block
    /// order.
    pub branches: Vec<(BlockId, BranchId)>,
}

impl ProductSolution {
    /// The machine states under which the replica branch in `block` is
    /// reachable.
    pub fn states_at(&self, block: BlockId) -> Vec<usize> {
        self.reach.states_at(block).collect()
    }
}

/// Solves the product automaton of one machine-controlled site.
///
/// Scans `replicated` for conditional branches whose provenance is `site`
/// (they all live in one function: replication never moves a branch across
/// functions), then explores `(block × machine state)` reachability from
/// the function entry in the machine's initial state. Replica branches
/// step the machine by their taken/not-taken transitions; edges from a
/// non-replica block into a natural loop holding replicas reset it to the
/// initial state, mirroring how replication re-enters at the initial
/// state's copy; every other edge carries the state unchanged.
///
/// Returns `Ok(None)` when no replica branch of `site` exists.
///
/// # Errors
///
/// Returns a description when `table` is malformed or the product
/// exploration exceeds [`MAX_PRODUCT_NODES`].
pub fn solve_site_product(
    replicated: &Module,
    provenance: &[BranchId],
    site: BranchId,
    table: &MachineTable,
) -> Result<Option<ProductSolution>, String> {
    table.validate()?;

    // Locate the replicas: every Br whose new site maps back to `site`.
    let mut func: Option<FuncId> = None;
    let mut branches: Vec<(BlockId, BranchId)> = Vec::new();
    for (fid, f) in replicated.iter_functions() {
        for (bid, block) in f.iter_blocks() {
            let Some(new_site) = block.term.branch_site() else {
                continue;
            };
            if provenance.get(new_site.index()) == Some(&site) {
                if func.is_some_and(|prev| prev != fid) {
                    return Err(format!(
                        "replicas of site {site} span functions {} and {fid}",
                        func.expect("checked is_some")
                    ));
                }
                func = Some(fid);
                branches.push((bid, new_site));
            }
        }
    }
    let Some(fid) = func else {
        return Ok(None);
    };

    // Per-block machine step: replicas of `site` step the machine on their
    // taken/not-taken legs, every other edge is the identity — except that
    // edges *entering* the replicated loop region from outside reset the
    // machine to its initial state. Replication pins history in the
    // program counter, so leaving the loop and coming back re-enters at
    // the initial state's copy; carrying the stale exit state across that
    // re-entry edge would pollute every copy's reachable set.
    let f = replicated.function(fid);
    let is_replica: Vec<bool> = f
        .blocks
        .iter()
        .map(|b| match &b.term {
            Term::Br { site: s, .. } => provenance.get(s.index()) == Some(&site),
            _ => false,
        })
        .collect();
    let cfg = Cfg::new(f);
    let dom = DomTree::new(&cfg);
    let loops = LoopForest::new(&cfg, &dom);
    // The replicated region: the innermost natural loops of the replicas.
    // Entering the region from a non-replica block outside it re-enters
    // the replicated structure at the initial state's copy, so such edges
    // reset the machine. Edges leaving a replica of the same site are
    // exempt: its legs are wired directly to the correct state copy and
    // therefore carry the state, even when they cross a loop boundary.
    let mut in_region = vec![false; f.blocks.len()];
    for &(bid, _) in &branches {
        if let Some(lid) = loops.innermost(bid) {
            for &b in &loops.get(lid).blocks {
                in_region[b.index()] = true;
            }
        }
    }
    let resets = |src: BlockId, dst: BlockId| -> bool {
        !is_replica[src.index()] && !in_region[src.index()] && in_region[dst.index()]
    };
    let reach = product_reachable(
        &cfg,
        table.len(),
        table.initial,
        MAX_PRODUCT_NODES,
        |b, slot, q| {
            if is_replica[b.index()] {
                table.next(q, slot == 0)
            } else if resets(b, cfg.succs(b)[slot]) {
                table.initial
            } else {
                q
            }
        },
    )
    .ok_or_else(|| {
        format!(
            "product exploration of site {site} exceeded {} nodes",
            MAX_PRODUCT_NODES
        )
    })?;

    Ok(Some(ProductSolution {
        func: fid,
        reach,
        branches,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flip_flop() -> MachineTable {
        MachineTable {
            states: vec![
                TableState {
                    predict: true,
                    on_taken: 1,
                    on_not_taken: 0,
                },
                TableState {
                    predict: false,
                    on_taken: 1,
                    on_not_taken: 0,
                },
            ],
            initial: 0,
        }
    }

    #[test]
    fn validate_catches_malformations() {
        assert!(flip_flop().validate().is_ok());
        let empty = MachineTable {
            states: vec![],
            initial: 0,
        };
        assert!(empty.validate().unwrap_err().contains("no states"));
        let bad_initial = MachineTable {
            initial: 5,
            ..flip_flop()
        };
        assert!(bad_initial.validate().unwrap_err().contains("initial"));
        let mut bad_edge = flip_flop();
        bad_edge.states[1].on_not_taken = 9;
        assert!(bad_edge.validate().unwrap_err().contains("transitions"));
    }

    #[test]
    fn spec_round_trip() {
        let mut spec = HistorySpec::new();
        assert!(spec.is_empty());
        spec.insert(BranchId(3), flip_flop());
        assert_eq!(spec.len(), 1);
        assert_eq!(spec.get(BranchId(3)), Some(&flip_flop()));
        assert_eq!(spec.get(BranchId(0)), None);
    }

    #[test]
    fn next_follows_table() {
        let t = flip_flop();
        assert_eq!(t.next(0, true), 1);
        assert_eq!(t.next(0, false), 0);
        assert_eq!(t.next(1, true), 1);
        assert_eq!(t.next(1, false), 0);
    }
}
