//! Live-register analysis (backward, may).
//!
//! A register is *live* at a point when some path from that point reads it
//! before writing it. The IR is non-SSA, so this is the classic bit-vector
//! problem: per-block `use` (read before any write in the block, including
//! the terminator's condition or return operand) and `def` sets, solved
//! backward with a union meet and an empty fact at function exits.

use brepl_cfg::Cfg;
use brepl_ir::{Function, Reg, Term};

use crate::bitset::BitSet;
use crate::solver::{solve, Direction, GenKill, Meet};

/// Per-block liveness facts.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Registers live at each block's entry.
    pub live_in: Vec<BitSet>,
    /// Registers live at each block's exit.
    pub live_out: Vec<BitSet>,
}

impl Liveness {
    /// Registers live at the entry of `b`.
    pub fn live_in(&self, b: brepl_ir::BlockId) -> &BitSet {
        &self.live_in[b.index()]
    }

    /// Registers live at the exit of `b`.
    pub fn live_out(&self, b: brepl_ir::BlockId) -> &BitSet {
        &self.live_out[b.index()]
    }
}

/// Registers read by a terminator (a branch condition or return operand).
pub fn term_uses(term: &Term, mut f: impl FnMut(Reg)) {
    match term {
        Term::Br { cond, .. } => {
            if let Some(r) = cond.reg() {
                f(r);
            }
        }
        Term::Ret { value: Some(v) } => {
            if let Some(r) = v.reg() {
                f(r);
            }
        }
        _ => {}
    }
}

/// Computes liveness for `func` over its CFG.
pub fn liveness(func: &Function, cfg: &Cfg) -> Liveness {
    let n_regs = func.n_regs as usize;
    let mut p = GenKill::new(Direction::Backward, Meet::Union, cfg.len(), n_regs);
    for (bid, block) in func.iter_blocks() {
        let gen = &mut p.gen[bid.index()];
        let kill = &mut p.kill[bid.index()];
        for inst in &block.insts {
            inst.for_each_use(|o| {
                if let Some(r) = o.reg() {
                    if !kill.contains(r.index()) {
                        gen.insert(r.index());
                    }
                }
            });
            if let Some(d) = inst.def() {
                kill.insert(d.index());
            }
        }
        let (gen, kill) = (&mut p.gen[bid.index()], &p.kill[bid.index()]);
        term_uses(&block.term, |r| {
            if !kill.contains(r.index()) {
                gen.insert(r.index());
            }
        });
    }
    let sol = solve(cfg, &p);
    Liveness {
        live_in: sol.entry,
        live_out: sol.exit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{BlockId, FunctionBuilder, Operand};

    #[test]
    fn loop_counter_is_live_around_the_loop() {
        // i = 0; while (i < n) i += 1; return i
        let mut b = FunctionBuilder::new("f", 1);
        let n = b.param(0);
        let i = b.reg();
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.const_int(i, 0);
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(i.into(), n.into());
        b.br(c, body, exit);
        b.switch_to(body);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.ret(Some(i.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let live = liveness(&f, &cfg);

        // i is live at the head, around the back edge, and into the exit.
        assert!(live.live_in(head).contains(i.index()));
        assert!(live.live_out(body).contains(i.index()));
        assert!(live.live_in(exit).contains(i.index()));
        // n (the param) is live at entry but dead after the loop.
        assert!(live.live_in(BlockId(0)).contains(n.index()));
        assert!(!live.live_in(exit).contains(n.index()));
        // Nothing is live at function exit.
        assert!(live.live_out(exit).is_empty());
    }

    #[test]
    fn block_local_def_masks_upstream_use() {
        // b1 writes x before reading it, so x is not live into b1.
        let mut b = FunctionBuilder::new("f", 0);
        let x = b.reg();
        let next = b.new_block();
        b.const_int(x, 1);
        b.jmp(next);
        b.switch_to(next);
        b.const_int(x, 2);
        b.ret(Some(x.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let live = liveness(&f, &cfg);
        assert!(!live.live_in(next).contains(x.index()));
        assert!(!live.live_out(BlockId(0)).contains(x.index()));
    }

    #[test]
    fn branch_condition_counts_as_use() {
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let t = b.new_block();
        b.br(x, t, t);
        b.switch_to(t);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let live = liveness(&f, &cfg);
        assert!(live.live_in(BlockId(0)).contains(x.index()));
    }
}
