//! Block reachability, shared by the `BR001` lint and the replicator's
//! unreachable-replica cleanup (`brepl-core::replicate::cleanup`).

use brepl_cfg::Cfg;
use brepl_ir::{BlockId, Function};

/// Per-block reachability from the function entry.
pub fn reachable_blocks(func: &Function) -> Vec<bool> {
    Cfg::new(func).reachable()
}

/// The ids of blocks *not* reachable from the function entry.
pub fn unreachable_blocks(func: &Function) -> Vec<BlockId> {
    reachable_blocks(func)
        .iter()
        .enumerate()
        .filter(|(_, &r)| !r)
        .map(|(i, _)| BlockId::from_index(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::FunctionBuilder;

    #[test]
    fn finds_unreachable() {
        let mut b = FunctionBuilder::new("f", 0);
        let dead = b.new_block();
        let dead2 = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.jmp(dead2);
        b.switch_to(dead2);
        b.ret(None);
        let f = b.finish();
        assert_eq!(reachable_blocks(&f), vec![true, false, false]);
        assert_eq!(unreachable_blocks(&f), vec![dead, dead2]);
    }

    #[test]
    fn fully_reachable_is_empty() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(None);
        let f = b.finish();
        assert!(unreachable_blocks(&f).is_empty());
    }
}
