//! A dense bit set over `0..len`, the fact representation for gen/kill
//! dataflow problems (registers, definition sites, block ids).

/// A fixed-universe bit set backed by `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The empty set over universe `0..len`.
    pub fn new_empty(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over universe `0..len`.
    pub fn new_full(len: usize) -> Self {
        let mut s = BitSet {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        s.mask_tail();
        s
    }

    /// Clears bits beyond `len` in the last word so that word-wise
    /// operations and equality stay canonical.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// The universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts `i`; returns true when it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} outside universe {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`; returns true when it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Membership test (out-of-universe indices are absent).
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self |= other`; returns true when `self` changed.
    ///
    /// # Panics
    ///
    /// Panics on mismatched universes.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self &= other`; returns true when `self` changed.
    ///
    /// # Panics
    ///
    /// Panics on mismatched universes.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self -= other` (set difference).
    ///
    /// # Panics
    ///
    /// Panics on mismatched universes.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True when every element of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched universes.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new_empty(100);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(99));
        assert_eq!(s.count(), 4);
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(1));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 99]);
    }

    #[test]
    fn full_masks_tail() {
        let s = BitSet::new_full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        // Canonical representation: full == empty ∪ all.
        let mut t = BitSet::new_empty(70);
        for i in 0..70 {
            t.insert(i);
        }
        assert_eq!(s, t);
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new_empty(10);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::new_empty(10);
        b.insert(2);
        b.insert(3);

        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert!(!u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3]);

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2]);

        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);

        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(BitSet::new_empty(10).is_empty());
    }

    #[test]
    fn zero_universe() {
        let s = BitSet::new_full(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
    }
}
