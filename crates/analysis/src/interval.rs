//! An integer interval lattice for value-range analysis over the
//! wrapping-arithmetic IR.
//!
//! Bounds are kept as `i128` with sentinel values one past the `i64`
//! range standing in for ±∞, so every concrete simulator value (always an
//! `i64`) is representable exactly and "unbounded" needs no extra flag.
//! The transfer functions mirror `brepl-sim` semantics precisely: integer
//! arithmetic **wraps**, so any finite-bound computation that could leave
//! the `i64` range degrades to [`Interval::top`] rather than claiming a
//! one-sided bound that wraparound would violate; division and remainder
//! truncate toward zero (and trap on zero divisors, which aborts the run
//! before any classification verdict is consulted); shifts mask their
//! amount to `0..64`.

use brepl_ir::{BinOp, CmpOp};

/// Lower sentinel: "unbounded below" (one past `i64::MIN`).
const NEG_INF: i128 = (i64::MIN as i128) - 1;
/// Upper sentinel: "unbounded above" (one past `i64::MAX`).
const POS_INF: i128 = (i64::MAX as i128) + 1;

/// A (possibly unbounded) range of `i64` values, or the empty set.
///
/// Invariant: either `lo > hi` (the canonical [`Interval::empty`]) or
/// `NEG_INF <= lo <= hi <= POS_INF` with each bound either a sentinel or
/// an in-range `i64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    lo: i128,
    hi: i128,
}

impl Interval {
    /// The empty interval (bottom of the lattice).
    pub fn empty() -> Self {
        Interval { lo: 1, hi: 0 }
    }

    /// The full `i64` range (top of the lattice).
    pub fn top() -> Self {
        Interval {
            lo: NEG_INF,
            hi: POS_INF,
        }
    }

    /// The singleton interval `[v, v]`.
    pub fn constant(v: i64) -> Self {
        Interval {
            lo: v as i128,
            hi: v as i128,
        }
    }

    /// The interval `[lo, hi]`; empty if `lo > hi`.
    pub fn range(lo: i64, hi: i64) -> Self {
        if lo > hi {
            Interval::empty()
        } else {
            Interval {
                lo: lo as i128,
                hi: hi as i128,
            }
        }
    }

    /// True for the empty set.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// True for the full range.
    pub fn is_top(&self) -> bool {
        self.lo <= NEG_INF && self.hi >= POS_INF
    }

    /// The single contained value, if the interval is a singleton.
    pub fn as_constant(&self) -> Option<i64> {
        if self.lo == self.hi && self.lo >= i64::MIN as i128 && self.lo <= i64::MAX as i128 {
            Some(self.lo as i64)
        } else {
            None
        }
    }

    /// The lower bound as a concrete `i64` (sentinels clamp to the range
    /// edge, which is exact: every runtime value is an `i64`).
    pub fn lo_clamped(&self) -> i64 {
        self.lo.clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }

    /// The upper bound as a concrete `i64` (see [`Self::lo_clamped`]).
    pub fn hi_clamped(&self) -> i64 {
        self.hi.clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }

    /// True if `v` is in the interval.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v as i128 && (v as i128) <= self.hi
    }

    /// Set inclusion: is every value of `self` in `other`?
    pub fn subset_of(&self, other: &Interval) -> bool {
        self.is_empty() || (other.lo <= self.lo && self.hi <= other.hi)
    }

    /// Least upper bound (convex hull). This is the *join* of the
    /// may-analysis: the result covers every value either side covers.
    pub fn join(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound (intersection).
    pub fn meet(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            Interval::empty()
        } else {
            Interval { lo, hi }
        }
    }

    /// Standard interval widening: a bound that moved since `old` jumps
    /// straight to its infinity, so ascending chains stabilize after at
    /// most two widenings per value.
    pub fn widen(&self, old: &Interval) -> Interval {
        if old.is_empty() {
            return *self;
        }
        if self.is_empty() {
            return *old;
        }
        Interval {
            lo: if self.lo < old.lo { NEG_INF } else { old.lo },
            hi: if self.hi > old.hi { POS_INF } else { old.hi },
        }
    }

    /// Canonicalizes a raw bound pair computed in `i128`: bounds past the
    /// `i64` range collapse to the matching sentinel, and a pair denoting
    /// no representable value at all becomes the canonical empty.
    fn canon(lo: i128, hi: i128) -> Interval {
        if lo > hi || hi < i64::MIN as i128 || lo > i64::MAX as i128 {
            return Interval::empty();
        }
        Interval {
            lo: if lo < i64::MIN as i128 { NEG_INF } else { lo },
            hi: if hi > i64::MAX as i128 { POS_INF } else { hi },
        }
    }

    /// True if any bound is a sentinel (the concrete result range is then
    /// not fully known, so wrapping arithmetic must give up).
    fn unbounded(&self) -> bool {
        self.lo <= NEG_INF || self.hi >= POS_INF
    }

    /// Sound transfer for wrapping binary arithmetic: compute exact bounds
    /// in `i128` and return them only when the whole result range fits in
    /// `i64` (then no operand pair wraps); otherwise [`Interval::top`].
    fn wrapping(lo: i128, hi: i128) -> Interval {
        if lo >= i64::MIN as i128 && hi <= i64::MAX as i128 {
            Interval { lo, hi }
        } else {
            Interval::top()
        }
    }

    /// Abstract `self op rhs`, matching the simulator's integer semantics.
    pub fn binop(op: BinOp, a: &Interval, b: &Interval) -> Interval {
        if a.is_empty() || b.is_empty() {
            return Interval::empty();
        }
        match op {
            BinOp::Add => {
                if a.unbounded() || b.unbounded() {
                    Interval::top()
                } else {
                    Interval::wrapping(a.lo + b.lo, a.hi + b.hi)
                }
            }
            BinOp::Sub => {
                if a.unbounded() || b.unbounded() {
                    Interval::top()
                } else {
                    Interval::wrapping(a.lo - b.hi, a.hi - b.lo)
                }
            }
            BinOp::Mul => {
                if a.unbounded() || b.unbounded() {
                    Interval::top()
                } else {
                    let c = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
                    Interval::wrapping(
                        c.iter().copied().min().unwrap(),
                        c.iter().copied().max().unwrap(),
                    )
                }
            }
            BinOp::Div => match b.as_constant() {
                // x / k truncates toward zero, which is monotone in x for
                // fixed k, so the endpoint quotients bound the result.
                // (i64::MIN / -1 wraps; that pair is outside the constant
                // fast path only when it can occur, so check it.)
                Some(k) if k != 0 => {
                    let lo = a.lo_clamped() as i128;
                    let hi = a.hi_clamped() as i128;
                    let q1 = lo / k as i128;
                    let q2 = hi / k as i128;
                    Interval::wrapping(q1.min(q2), q1.max(q2))
                }
                _ => Interval::top(),
            },
            BinOp::Rem => match b.as_constant() {
                Some(k) if k != 0 => {
                    let m = (k as i128).abs() - 1;
                    let lo = a.lo_clamped() as i128;
                    let hi = a.hi_clamped() as i128;
                    // Truncated remainder keeps the dividend's sign.
                    if lo >= 0 {
                        Interval::canon(0, hi.min(m))
                    } else if hi <= 0 {
                        Interval::canon(lo.max(-m), 0)
                    } else {
                        Interval::canon(-m, m)
                    }
                }
                _ => Interval::top(),
            },
            BinOp::And => {
                let (alo, ahi) = (a.lo_clamped(), a.hi_clamped());
                let (blo, bhi) = (b.lo_clamped(), b.hi_clamped());
                if alo >= 0 && blo >= 0 {
                    // Both non-negative: the result drops bits only.
                    Interval::canon(0, (ahi as i128).min(bhi as i128))
                } else if blo == bhi && blo >= 0 {
                    Interval::canon(0, bhi as i128)
                } else if alo == ahi && alo >= 0 {
                    Interval::canon(0, ahi as i128)
                } else {
                    Interval::top()
                }
            }
            BinOp::Or | BinOp::Xor => {
                let (alo, ahi) = (a.lo_clamped(), a.hi_clamped());
                let (blo, bhi) = (b.lo_clamped(), b.hi_clamped());
                if alo >= 0 && blo >= 0 && !a.unbounded() && !b.unbounded() {
                    // For x, y >= 0: x|y <= x+y and x^y <= x+y; both stay
                    // non-negative.
                    Interval::wrapping(0, ahi as i128 + bhi as i128)
                } else {
                    Interval::top()
                }
            }
            BinOp::Shl => match b.as_constant() {
                Some(s) => {
                    // The simulator masks the amount to 0..64.
                    let s = (s as u32) & 63;
                    if a.unbounded() {
                        Interval::top()
                    } else {
                        Interval::wrapping(a.lo << s, a.hi << s)
                    }
                }
                None => Interval::top(),
            },
            BinOp::Shr => match b.as_constant() {
                Some(s) => {
                    let s = (s as u32) & 63;
                    // Arithmetic shift of an i64 never leaves the i64
                    // range and is monotone, so clamp the (possibly
                    // sentinel) bounds to concrete values first.
                    let lo = (a.lo_clamped() >> s) as i128;
                    let hi = (a.hi_clamped() >> s) as i128;
                    Interval::canon(lo, hi)
                }
                None => Interval::top(),
            },
        }
    }

    /// Abstract comparison `a op b` as a 0/1 interval: `[1,1]` when every
    /// value pair satisfies the predicate, `[0,0]` when none does,
    /// `[0,1]` otherwise.
    pub fn cmp(op: CmpOp, a: &Interval, b: &Interval) -> Interval {
        if a.is_empty() || b.is_empty() {
            return Interval::empty();
        }
        let (always, never) = match op {
            CmpOp::Eq => (
                a.as_constant().is_some() && a.as_constant() == b.as_constant(),
                a.meet(b).is_empty(),
            ),
            CmpOp::Ne => (
                a.meet(b).is_empty(),
                a.as_constant().is_some() && a.as_constant() == b.as_constant(),
            ),
            CmpOp::Lt => (a.hi < b.lo, a.lo >= b.hi),
            CmpOp::Le => (a.hi <= b.lo, a.lo > b.hi),
            CmpOp::Gt => (a.lo > b.hi, a.hi <= b.lo),
            CmpOp::Ge => (a.lo >= b.hi, a.hi < b.lo),
        };
        if always {
            Interval::constant(1)
        } else if never {
            Interval::constant(0)
        } else {
            Interval::range(0, 1)
        }
    }

    /// Refines `self` under the assumption `self op [k,k]` holds
    /// (`hold = true`) or fails (`hold = false`): the branch-edge
    /// refinement of conditional constant propagation. Returns the
    /// (possibly empty) restriction; never grows the interval.
    pub fn refine_cmp(&self, op: CmpOp, k: i64, hold: bool) -> Interval {
        let op = if hold { op } else { op.negated() };
        let constraint = match op {
            CmpOp::Eq => Interval::constant(k),
            CmpOp::Ne => {
                // Only singleton exclusions shrink an interval.
                if self.as_constant() == Some(k) {
                    Interval::empty()
                } else if self.lo == k as i128 {
                    return Interval::canon(self.lo + 1, self.hi);
                } else if self.hi == k as i128 {
                    return Interval::canon(self.lo, self.hi - 1);
                } else {
                    return *self;
                }
            }
            CmpOp::Lt => Interval::canon(NEG_INF, k as i128 - 1),
            CmpOp::Le => Interval::canon(NEG_INF, k as i128),
            CmpOp::Gt => Interval::canon(k as i128 + 1, POS_INF),
            CmpOp::Ge => Interval::canon(k as i128, POS_INF),
        };
        self.meet(&constraint)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return f.write_str("∅");
        }
        match (self.lo <= NEG_INF, self.hi >= POS_INF) {
            (true, true) => f.write_str("[-inf, +inf]"),
            (true, false) => write!(f, "[-inf, {}]", self.hi),
            (false, true) => write!(f, "[{}, +inf]", self.lo),
            (false, false) => write!(f, "[{}, {}]", self.lo, self.hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The xorshift generator shared by the in-tree property tests.
    struct Gen(u64);

    impl Gen {
        fn new(seed: u64) -> Self {
            Gen(seed | 0x1234_5678)
        }
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
        /// A value biased toward small magnitudes and range edges, where
        /// the transfer corner cases live.
        fn value(&mut self) -> i64 {
            match self.below(8) {
                0 => i64::MIN + self.below(4) as i64,
                1 => i64::MAX - self.below(4) as i64,
                2 => 0,
                3..=5 => self.below(64) as i64 - 32,
                _ => self.next() as i64,
            }
        }
        fn interval(&mut self) -> Interval {
            match self.below(10) {
                0 => Interval::empty(),
                1 => Interval::top(),
                2 => {
                    let v = self.value();
                    Interval::constant(v)
                }
                3 => Interval::canon(NEG_INF, self.value() as i128),
                4 => Interval::canon(self.value() as i128, POS_INF),
                _ => {
                    let a = self.value();
                    let b = self.value();
                    Interval::range(a.min(b), a.max(b))
                }
            }
        }
        /// A concrete member of `iv` (which must be non-empty).
        fn member(&mut self, iv: &Interval) -> i64 {
            let lo = iv.lo_clamped();
            let hi = iv.hi_clamped();
            let span = (hi as i128 - lo as i128 + 1) as u128;
            let off = (self.next() as u128) % span;
            (lo as i128 + off as i128) as i64
        }
    }

    const OPS: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];

    const CMPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Concrete evaluation mirroring `brepl-sim`'s arith.rs.
    fn concrete(op: BinOp, x: i64, y: i64) -> Option<i64> {
        Some(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return None; // trap
                }
                x.wrapping_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return None; // trap
                }
                x.wrapping_rem(y)
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32 & 63),
            BinOp::Shr => x.wrapping_shr(y as u32 & 63),
        })
    }

    #[test]
    fn join_is_commutative_idempotent_and_bounding() {
        let mut g = Gen::new(11);
        for _ in 0..2000 {
            let a = g.interval();
            let b = g.interval();
            assert_eq!(a.join(&b), b.join(&a), "join commutes: {a} {b}");
            assert_eq!(a.join(&a), a, "join idempotent: {a}");
            assert!(a.subset_of(&a.join(&b)), "{a} ⊆ {a} ⊔ {b}");
            assert!(b.subset_of(&a.join(&b)), "{b} ⊆ {a} ⊔ {b}");
        }
    }

    #[test]
    fn meet_is_commutative_idempotent_and_bounded() {
        let mut g = Gen::new(12);
        for _ in 0..2000 {
            let a = g.interval();
            let b = g.interval();
            assert_eq!(a.meet(&b), b.meet(&a), "meet commutes: {a} {b}");
            assert_eq!(a.meet(&a), a, "meet idempotent: {a}");
            assert!(a.meet(&b).subset_of(&a), "{a} ⊓ {b} ⊆ {a}");
            assert!(a.meet(&b).subset_of(&b), "{a} ⊓ {b} ⊆ {b}");
        }
    }

    #[test]
    fn lattice_absorption_laws() {
        let mut g = Gen::new(13);
        for _ in 0..2000 {
            let a = g.interval();
            let b = g.interval();
            assert_eq!(a.join(&a.meet(&b)), a, "absorption: {a} {b}");
            // Meet-absorption holds only up to convexity for join (the
            // hull can overshoot), but join(a, b) always contains a, so:
            assert_eq!(a.meet(&a.join(&b)), a, "absorption: {a} {b}");
        }
    }

    /// Transfer soundness: for random intervals and random members, the
    /// concrete result is inside the abstract result.
    #[test]
    fn binop_transfer_is_sound_on_members() {
        let mut g = Gen::new(14);
        for _ in 0..4000 {
            let a = g.interval();
            let b = g.interval();
            if a.is_empty() || b.is_empty() {
                continue;
            }
            let op = OPS[g.below(OPS.len() as u64) as usize];
            let out = Interval::binop(op, &a, &b);
            for _ in 0..8 {
                let x = g.member(&a);
                let y = g.member(&b);
                if let Some(r) = concrete(op, x, y) {
                    assert!(
                        out.contains(r),
                        "{op:?}: {x} ∈ {a}, {y} ∈ {b}, concrete {r} ∉ {out}"
                    );
                }
            }
        }
    }

    /// Transfer monotonicity: growing an input never shrinks the output.
    #[test]
    fn binop_transfer_is_monotone() {
        let mut g = Gen::new(15);
        for _ in 0..4000 {
            let a = g.interval();
            let b = g.interval();
            let a2 = a.join(&g.interval());
            let b2 = b.join(&g.interval());
            let op = OPS[g.below(OPS.len() as u64) as usize];
            let small = Interval::binop(op, &a, &b);
            let big = Interval::binop(op, &a2, &b2);
            assert!(
                small.subset_of(&big),
                "{op:?} not monotone: {a}⊆{a2}, {b}⊆{b2}, but {small} ⊄ {big}"
            );
        }
    }

    #[test]
    fn cmp_transfer_is_sound_and_monotone() {
        let mut g = Gen::new(16);
        for _ in 0..4000 {
            let a = g.interval();
            let b = g.interval();
            if a.is_empty() || b.is_empty() {
                continue;
            }
            let op = CMPS[g.below(CMPS.len() as u64) as usize];
            let out = Interval::cmp(op, &a, &b);
            for _ in 0..8 {
                let x = g.member(&a);
                let y = g.member(&b);
                let r = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                };
                assert!(out.contains(i64::from(r)), "{op:?} {a} {b}: {r} ∉ {out}");
            }
            let a2 = a.join(&g.interval());
            let b2 = b.join(&g.interval());
            assert!(
                out.subset_of(&Interval::cmp(op, &a2, &b2)),
                "cmp not monotone"
            );
        }
    }

    /// Edge refinement soundness: a member satisfying (or failing) the
    /// predicate survives refinement; refinement never grows the set.
    #[test]
    fn refine_cmp_is_sound_and_shrinking() {
        let mut g = Gen::new(17);
        for _ in 0..4000 {
            let a = g.interval();
            if a.is_empty() {
                continue;
            }
            let k = if g.below(2) == 0 {
                g.value()
            } else {
                g.member(&a)
            };
            let op = CMPS[g.below(CMPS.len() as u64) as usize];
            for hold in [false, true] {
                let refined = a.refine_cmp(op, k, hold);
                assert!(refined.subset_of(&a), "refine grew {a} to {refined}");
                for _ in 0..8 {
                    let x = g.member(&a);
                    let sat = match op {
                        CmpOp::Eq => x == k,
                        CmpOp::Ne => x != k,
                        CmpOp::Lt => x < k,
                        CmpOp::Le => x <= k,
                        CmpOp::Gt => x > k,
                        CmpOp::Ge => x >= k,
                    };
                    if sat == hold {
                        assert!(
                            refined.contains(x),
                            "refine({a}, {op:?} {k}, {hold}) dropped {x}: {refined}"
                        );
                    }
                }
            }
        }
    }

    /// Widening termination: any ascending chain, widened step by step,
    /// stabilizes within a handful of steps — the adversarial loop-nest
    /// shape (bounds creeping both directions every iteration) included.
    #[test]
    fn widening_terminates_on_adversarial_chains() {
        let mut g = Gen::new(18);
        for _ in 0..500 {
            let mut cur = g.interval();
            let mut widenings = 0usize;
            for _step in 0..1000 {
                // Adversarial growth: creep a bound, jump, or join in a
                // random interval — always at least weakly ascending.
                let grown = match g.below(3) {
                    0 => cur.join(&g.interval()),
                    1 => cur.join(&Interval::constant(g.value())),
                    _ => {
                        let lo = cur.lo_clamped().saturating_sub(1);
                        let hi = cur.hi_clamped().saturating_add(1);
                        cur.join(&Interval::range(lo, hi))
                    }
                };
                let next = grown.widen(&cur);
                assert!(cur.subset_of(&next), "widening must ascend");
                if next == cur {
                    break;
                }
                cur = next;
                widenings += 1;
            }
            // Each widening pushes at least one bound to its sentinel, so
            // two widenings (plus the possible initial jump out of empty)
            // exhaust the chain.
            assert!(widenings <= 3, "chain did not stabilize: {widenings}");
        }
        // Deterministic worst case: nested loops each bumping a counter.
        let mut iv = Interval::constant(0);
        for depth in 0..64 {
            let bumped = Interval::binop(BinOp::Add, &iv, &Interval::constant(1));
            let next = iv.join(&bumped).widen(&iv);
            if next == iv {
                assert!(depth <= 2, "nested bump chain widened too slowly");
                break;
            }
            iv = next;
        }
        assert!(iv.contains(i64::MAX), "widened bound must cover the loop");
    }

    #[test]
    fn display_covers_all_shapes() {
        assert_eq!(Interval::empty().to_string(), "∅");
        assert_eq!(Interval::top().to_string(), "[-inf, +inf]");
        assert_eq!(Interval::range(1, 5).to_string(), "[1, 5]");
        assert_eq!(Interval::canon(NEG_INF, 7).to_string(), "[-inf, 7]");
        assert_eq!(Interval::canon(7, POS_INF).to_string(), "[7, +inf]");
    }
}
