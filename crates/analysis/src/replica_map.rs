//! The replica map: the witness artifact the replicator emits so the
//! translation validator can check the transformation without re-deriving
//! it.
//!
//! Replication clones blocks, rewires edges between clones, and then
//! simplifies (threads jumps past empty blocks and merges straight-line
//! pairs). A replica block therefore corresponds to a *chain* of original
//! blocks: the blocks whose instruction streams were concatenated into it.
//! For untouched blocks and pristine clones the chain has length one.

use brepl_ir::{BlockId, Module};

/// Per-function origin information for one replicated function.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicaFuncMap {
    /// For each replica block (by index), the chain of original block ids
    /// whose instruction streams it carries, in order. Always non-empty
    /// for a well-formed map.
    pub origins: Vec<Vec<BlockId>>,
    /// For each replica block, the branch direction the encoded machine
    /// state predicts at that block's conditional branch — `None` when the
    /// block has no machine-pinned prediction (unconditional terminator, or
    /// a branch predicted from profile data instead).
    pub machine_predictions: Vec<Option<bool>>,
}

impl ReplicaFuncMap {
    /// The identity map for an untransformed function with `n_blocks`
    /// blocks.
    pub fn identity(n_blocks: usize) -> Self {
        ReplicaFuncMap {
            origins: (0..n_blocks)
                .map(|i| vec![BlockId::from_index(i)])
                .collect(),
            machine_predictions: vec![None; n_blocks],
        }
    }

    /// The first original block of replica block `b`'s chain, if the map
    /// covers `b`.
    pub fn first_origin(&self, b: BlockId) -> Option<BlockId> {
        self.origins.get(b.index()).and_then(|c| c.first().copied())
    }

    /// The last original block of replica block `b`'s chain, if the map
    /// covers `b`.
    pub fn last_origin(&self, b: BlockId) -> Option<BlockId> {
        self.origins.get(b.index()).and_then(|c| c.last().copied())
    }
}

/// Origin information for every function of a replicated module, indexed
/// by [`brepl_ir::FuncId`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicaMap {
    /// One entry per function, in function-id order.
    pub functions: Vec<ReplicaFuncMap>,
}

impl ReplicaMap {
    /// The identity map for `module` (every function untransformed).
    pub fn identity(module: &Module) -> Self {
        ReplicaMap {
            functions: module
                .iter_functions()
                .map(|(_, f)| ReplicaFuncMap::identity(f.blocks.len()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::FunctionBuilder;

    #[test]
    fn identity_covers_all_blocks() {
        let mut b = FunctionBuilder::new("main", 0);
        let next = b.new_block();
        b.jmp(next);
        b.switch_to(next);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        let map = ReplicaMap::identity(&m);
        assert_eq!(map.functions.len(), 1);
        let fm = &map.functions[0];
        assert_eq!(fm.origins, vec![vec![BlockId(0)], vec![BlockId(1)]]);
        assert_eq!(fm.first_origin(BlockId(1)), Some(BlockId(1)));
        assert_eq!(fm.last_origin(BlockId(1)), Some(BlockId(1)));
        assert_eq!(fm.first_origin(BlockId(9)), None);
        assert_eq!(fm.machine_predictions, vec![None, None]);
    }
}
