//! Lints: warning-severity findings over a single module, built on the
//! dataflow analyses. These run on replicated modules in the pipeline (a
//! rename or rewiring bug usually shows up here first) but are meaningful
//! on any module.

use brepl_cfg::Cfg;
use brepl_ir::{FuncId, Function, Loc, Module};

use crate::diag::{AnalysisDiag, DiagCode};
use crate::liveness::{liveness, term_uses};
use crate::reach::reachable_blocks;
use crate::uninit::use_before_def;

/// `BR001` for every block of `func` not reachable from its entry.
pub fn unreachable_diags(fid: FuncId, func: &Function) -> Vec<AnalysisDiag> {
    let reachable = reachable_blocks(func);
    func.iter_blocks()
        .filter(|(bid, _)| !reachable[bid.index()])
        .map(|(bid, _)| {
            AnalysisDiag::new(
                DiagCode::UnreachableReplica,
                Loc::block(fid, bid),
                format!("block {bid} is unreachable from the function entry"),
            )
        })
        .collect()
}

/// `BR002` for every instruction whose written register is dead at that
/// point. Instructions with side effects (stores, calls, intrinsics,
/// allocations) are exempt — their value is in the effect — and so are
/// potentially-trapping instructions (loads, divisions), whose removal
/// could change behavior. Unreachable blocks are skipped.
pub fn dead_store_diags(fid: FuncId, func: &Function) -> Vec<AnalysisDiag> {
    let cfg = Cfg::new(func);
    let live = liveness(func, &cfg);
    let reachable = cfg.reachable();
    let mut diags = Vec::new();
    for (bid, block) in func.iter_blocks() {
        if !reachable[bid.index()] {
            continue;
        }
        // Walk the block backward from live-out, per-instruction.
        let mut live_now = live.live_out[bid.index()].clone();
        term_uses(&block.term, |r| {
            live_now.insert(r.index());
        });
        let mut dead: Vec<usize> = Vec::new();
        for (i, inst) in block.insts.iter().enumerate().rev() {
            if let Some(d) = inst.def() {
                if !live_now.contains(d.index()) && is_removable(inst) {
                    dead.push(i);
                }
                live_now.remove(d.index());
            }
            inst.for_each_use(|o| {
                if let Some(r) = o.reg() {
                    live_now.insert(r.index());
                }
            });
        }
        for i in dead.into_iter().rev() {
            let d = block.insts[i].def().expect("dead stores write a register");
            diags.push(AnalysisDiag::new(
                DiagCode::DeadStore,
                Loc::inst(fid, bid, i),
                format!("{d} is written here but never read afterwards"),
            ));
        }
    }
    diags
}

/// True when deleting the instruction could not change observable behavior:
/// no side effects and no way to trap.
fn is_removable(inst: &brepl_ir::Inst) -> bool {
    use brepl_ir::{BinOp, Inst};
    match inst {
        Inst::Const { .. }
        | Inst::Copy { .. }
        | Inst::Cmp { .. }
        | Inst::Ftoi { .. }
        | Inst::Itof { .. } => true,
        // Division and remainder trap on zero; loads trap out of bounds.
        Inst::Bin { op, .. } => !matches!(op, BinOp::Div | BinOp::Rem),
        Inst::Load { .. }
        | Inst::Store { .. }
        | Inst::Alloc { .. }
        | Inst::Call { .. }
        | Inst::Intrin { .. } => false,
    }
}

/// `BR003` for every read of a not-definitely-assigned register.
pub fn use_before_def_diags(fid: FuncId, func: &Function) -> Vec<AnalysisDiag> {
    let cfg = Cfg::new(func);
    use_before_def(func, &cfg)
        .into_iter()
        .map(|u| {
            AnalysisDiag::new(
                DiagCode::UseBeforeDef,
                Loc {
                    func: fid,
                    block: Some(u.block),
                    inst: Some(u.inst),
                },
                format!("{} may be read before it is written", u.reg),
            )
        })
        .collect()
}

/// Runs every lint over every function of `module`.
pub fn lint_module(module: &Module) -> Vec<AnalysisDiag> {
    let mut diags = Vec::new();
    for (fid, func) in module.iter_functions() {
        diags.extend(unreachable_diags(fid, func));
        diags.extend(dead_store_diags(fid, func));
        diags.extend(use_before_def_diags(fid, func));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};

    #[test]
    fn unreachable_block_reported() {
        let mut b = FunctionBuilder::new("f", 0);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        let diags = lint_module(&m);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::UnreachableReplica);
        assert_eq!(diags[0].loc, Loc::block(FuncId(0), dead));
    }

    #[test]
    fn dead_store_reported_but_not_side_effects() {
        let mut b = FunctionBuilder::new("f", 0);
        let x = b.reg();
        b.const_int(x, 1); // overwritten below without a read: dead
        b.const_int(x, 2);
        b.store(Operand::imm(0), x.into()); // side effect: never dead
        b.ret(None);
        let mut m = Module::new();
        m.globals = 1;
        m.push_function(b.finish());
        let diags = lint_module(&m);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::DeadStore);
        assert_eq!(diags[0].loc, Loc::inst(FuncId(0), brepl_ir::BlockId(0), 0));
    }

    #[test]
    fn trapping_instructions_are_not_dead_stores() {
        let mut b = FunctionBuilder::new("f", 1);
        let p0 = b.param(0);
        let x = b.reg();
        b.div(x, Operand::imm(1), p0.into()); // may trap: not removable
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        assert!(lint_module(&m).is_empty());
    }

    #[test]
    fn use_before_def_reported() {
        let mut b = FunctionBuilder::new("f", 0);
        let x = b.reg();
        b.out(x.into());
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        let diags = lint_module(&m);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::UseBeforeDef);
    }

    #[test]
    fn clean_function_is_clean() {
        let mut b = FunctionBuilder::new("f", 1);
        let p0 = b.param(0);
        let y = b.reg();
        b.add(y, p0.into(), Operand::imm(1));
        b.ret(Some(y.into()));
        let mut m = Module::new();
        m.push_function(b.finish());
        assert!(lint_module(&m).is_empty());
    }
}
