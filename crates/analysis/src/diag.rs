//! Diagnostics: stable codes, severities and locations for everything the
//! lints and the translation validator report.

use std::fmt;

use brepl_ir::{Loc, Module};

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but semantics-preserving; reported, never fatal.
    Warning,
    /// The simulation relation is broken — the transformed program must not
    /// ship.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The stable diagnostic codes. Codes are append-only: meanings never
/// change, retired codes are never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `BR001` — a replica block is unreachable from its function entry.
    UnreachableReplica,
    /// `BR002` — an instruction writes a register no later execution reads.
    DeadStore,
    /// `BR003` — a register is read on some path before any write.
    UseBeforeDef,
    /// `BR004` — a replica CFG edge does not project to an original edge.
    OrphanReplicaEdge,
    /// `BR005` — a replica block's instruction stream differs from its
    /// origin chain.
    InstStreamMismatch,
    /// `BR006` — a statically predicted direction contradicts the branch-
    /// machine state the replica encodes.
    PredictionMismatch,
    /// `BR007` — a register live into a replica block is not live into its
    /// origin.
    LiveInMismatch,
    /// `BR008` — the replica map itself is malformed (wrong shape, dangling
    /// ids).
    InvalidReplicaMap,
}

impl DiagCode {
    /// The stable code string (`BR001`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::UnreachableReplica => "BR001",
            DiagCode::DeadStore => "BR002",
            DiagCode::UseBeforeDef => "BR003",
            DiagCode::OrphanReplicaEdge => "BR004",
            DiagCode::InstStreamMismatch => "BR005",
            DiagCode::PredictionMismatch => "BR006",
            DiagCode::LiveInMismatch => "BR007",
            DiagCode::InvalidReplicaMap => "BR008",
        }
    }

    /// A short hyphenated name, as used in documentation.
    pub fn title(self) -> &'static str {
        match self {
            DiagCode::UnreachableReplica => "unreachable-replica",
            DiagCode::DeadStore => "dead-store",
            DiagCode::UseBeforeDef => "use-before-def",
            DiagCode::OrphanReplicaEdge => "orphan-replica-edge",
            DiagCode::InstStreamMismatch => "inst-stream-mismatch",
            DiagCode::PredictionMismatch => "prediction-mismatch",
            DiagCode::LiveInMismatch => "live-in-mismatch",
            DiagCode::InvalidReplicaMap => "invalid-replica-map",
        }
    }

    /// The severity of every diagnostic carrying this code. The first three
    /// codes describe suspicious-but-sound situations (the simulator zero-
    /// initializes registers, and unreachable/dead code cannot execute);
    /// the rest break the simulation relation.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::UnreachableReplica | DiagCode::DeadStore | DiagCode::UseBeforeDef => {
                Severity::Warning
            }
            DiagCode::OrphanReplicaEdge
            | DiagCode::InstStreamMismatch
            | DiagCode::PredictionMismatch
            | DiagCode::LiveInMismatch
            | DiagCode::InvalidReplicaMap => Severity::Error,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.as_str(), self.title())
    }
}

/// One finding from a lint or the translation validator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalysisDiag {
    /// The stable code.
    pub code: DiagCode,
    /// Where in the (replicated) module the finding points.
    pub loc: Loc,
    /// A human-readable explanation with the specifics.
    pub message: String,
}

impl AnalysisDiag {
    /// Builds a diagnostic.
    pub fn new(code: DiagCode, loc: Loc, message: impl Into<String>) -> Self {
        AnalysisDiag {
            code,
            loc,
            message: message.into(),
        }
    }

    /// The severity, derived from the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Renders the diagnostic with the function *name* resolved against
    /// `module` (the module the location points into).
    pub fn render(&self, module: &Module) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity(),
            self.code.as_str(),
            module.describe_loc(&self.loc),
            self.message
        )
    }
}

impl fmt::Display for AnalysisDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity(),
            self.code.as_str(),
            self.loc,
            self.message
        )
    }
}

/// True when any diagnostic has error severity.
pub fn has_errors(diags: &[AnalysisDiag]) -> bool {
    diags.iter().any(|d| d.severity() == Severity::Error)
}

/// Counts `(errors, warnings)`.
pub fn count_by_severity(diags: &[AnalysisDiag]) -> (usize, usize) {
    let errors = diags
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    (errors, diags.len() - errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{BlockId, FuncId};

    #[test]
    fn codes_are_stable() {
        assert_eq!(DiagCode::UnreachableReplica.as_str(), "BR001");
        assert_eq!(DiagCode::DeadStore.as_str(), "BR002");
        assert_eq!(DiagCode::UseBeforeDef.as_str(), "BR003");
        assert_eq!(DiagCode::OrphanReplicaEdge.as_str(), "BR004");
        assert_eq!(DiagCode::InstStreamMismatch.as_str(), "BR005");
        assert_eq!(DiagCode::PredictionMismatch.as_str(), "BR006");
        assert_eq!(DiagCode::LiveInMismatch.as_str(), "BR007");
        assert_eq!(DiagCode::InvalidReplicaMap.as_str(), "BR008");
    }

    #[test]
    fn severity_split() {
        assert_eq!(DiagCode::UnreachableReplica.severity(), Severity::Warning);
        assert_eq!(DiagCode::DeadStore.severity(), Severity::Warning);
        assert_eq!(DiagCode::UseBeforeDef.severity(), Severity::Warning);
        assert_eq!(DiagCode::OrphanReplicaEdge.severity(), Severity::Error);
        assert_eq!(DiagCode::InstStreamMismatch.severity(), Severity::Error);
        assert_eq!(DiagCode::PredictionMismatch.severity(), Severity::Error);
        assert_eq!(DiagCode::LiveInMismatch.severity(), Severity::Error);
        assert_eq!(DiagCode::InvalidReplicaMap.severity(), Severity::Error);
    }

    #[test]
    fn display_and_error_detection() {
        let warn = AnalysisDiag::new(
            DiagCode::DeadStore,
            Loc::inst(FuncId(0), BlockId(1), 2),
            "r3 is never read",
        );
        assert_eq!(
            warn.to_string(),
            "warning[BR002] f0:b1:i2: r3 is never read"
        );
        assert!(!has_errors(std::slice::from_ref(&warn)));
        let err = AnalysisDiag::new(
            DiagCode::OrphanReplicaEdge,
            Loc::term(FuncId(0), BlockId(1)),
            "edge b1 -> b9 has no original counterpart",
        );
        assert!(has_errors(&[warn.clone(), err.clone()]));
        assert_eq!(count_by_severity(&[warn, err]), (1, 1));
    }
}
