//! Diagnostics: stable codes, severities and locations for everything the
//! lints and the translation validator report.

use std::fmt;

use brepl_ir::{BranchId, Loc, Module};

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but semantics-preserving; reported, never fatal.
    Warning,
    /// The simulation relation is broken — the transformed program must not
    /// ship.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The stable diagnostic codes. Codes are append-only: meanings never
/// change, retired codes are never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `BR001` — a replica block is unreachable from its function entry.
    UnreachableReplica,
    /// `BR002` — an instruction writes a register no later execution reads.
    DeadStore,
    /// `BR003` — a register is read on some path before any write.
    UseBeforeDef,
    /// `BR004` — a replica CFG edge does not project to an original edge.
    OrphanReplicaEdge,
    /// `BR005` — a replica block's instruction stream differs from its
    /// origin chain.
    InstStreamMismatch,
    /// `BR006` — a statically predicted direction contradicts the branch-
    /// machine state the replica encodes.
    PredictionMismatch,
    /// `BR007` — a register live into a replica block is not live into its
    /// origin.
    LiveInMismatch,
    /// `BR008` — the replica map itself is malformed (wrong shape, dangling
    /// ids).
    InvalidReplicaMap,
    /// `BR009` — a replica branch is reachable under a machine state whose
    /// predicted direction differs from the branch's pinned static
    /// prediction: the history encoding is violated.
    HistoryPredictionViolation,
    /// `BR010` — a replica branch is reachable under machine states with
    /// *conflicting* predictions: the region is under-replicated (two
    /// machine states share one copy).
    HistoryConflict,
    /// `BR011` — a machine state under which no replica branch is ever
    /// reachable: the state's code copies are wasted size (or were never
    /// emitted).
    UnreachableMachineState,
    /// `BR012` — the product fixpoint could not be computed: the machine
    /// table is malformed, the product exploded past its cap, or a
    /// machine-controlled site has no replica branch at all.
    ProductFixpointFailure,
    /// `BR013` — the profiling trace records an event contradicting a
    /// direction *proved* by abstract interpretation (e.g. a taken event on
    /// a branch proved never-taken): the trace is corrupt or stale.
    ProfileProofConflict,
    /// `BR014` — the profiled taken-rate of a branch falls outside the
    /// statically proved bias band (beyond tolerance): the trace disagrees
    /// with a trip-count proof.
    ProfileBiasConflict,
    /// `BR015` — the profiling trace records events at a branch site the
    /// static analysis proves unreachable: the trace cannot have come from
    /// this module.
    ProfileEventOnUnreachable,
    /// `BR016` — a shipped static prediction pins the direction opposite to
    /// a statically proved one on a profile-trusted site.
    PredictionProofConflict,
    /// `BR017` — the classification fixpoint did not converge within
    /// budget; verdicts for the affected function are withheld (fail
    /// closed).
    ClassifyFixpointFailure,
    /// `BR018` — a branch condition is a compile-time constant: the branch
    /// is decidable without replication and is likely vestigial.
    ConstantConditionBranch,
    /// `BR019` — the measured taken-count of a branch contradicts the
    /// static profile's *exact* bias estimate (a proof-backed rational):
    /// either the trace is corrupt or the stored estimate was tampered
    /// with. Heuristic estimates are never checked this way — their drift
    /// is reported as data, not as a diagnostic.
    EstimateDriftConflict,
    /// `BR020` — the static profile assigns positive expected frequency to
    /// a branch site the direction analysis proves unreachable.
    EstimateUnreachableMass,
    /// `BR021` — a block of the static profile violates flow conservation
    /// (in-mass differs from its block frequency beyond tolerance): the
    /// profile did not come from an honest propagation.
    EstimateConservationViolation,
    /// `BR022` — the frequency-propagation fixpoint blew its metered
    /// budget or hit irreducible control flow; estimates for the affected
    /// function are withheld (fail closed).
    EstimateFixpointFailure,
    /// `BR023` — a runtime re-specialization patch was rejected: it failed
    /// the BR001–BR012 re-proof before commit, contradicted a statically
    /// proved direction, or was rolled back after failing to improve
    /// measured misprediction within its verification window.
    PatchRejected,
    /// `BR024` — a site's patches keep reversing or failing verification
    /// (the input distribution is oscillating faster than the adaptation
    /// window); the site is quarantined from further re-patching.
    FlappingSite,
}

impl DiagCode {
    /// The stable code string (`BR001`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::UnreachableReplica => "BR001",
            DiagCode::DeadStore => "BR002",
            DiagCode::UseBeforeDef => "BR003",
            DiagCode::OrphanReplicaEdge => "BR004",
            DiagCode::InstStreamMismatch => "BR005",
            DiagCode::PredictionMismatch => "BR006",
            DiagCode::LiveInMismatch => "BR007",
            DiagCode::InvalidReplicaMap => "BR008",
            DiagCode::HistoryPredictionViolation => "BR009",
            DiagCode::HistoryConflict => "BR010",
            DiagCode::UnreachableMachineState => "BR011",
            DiagCode::ProductFixpointFailure => "BR012",
            DiagCode::ProfileProofConflict => "BR013",
            DiagCode::ProfileBiasConflict => "BR014",
            DiagCode::ProfileEventOnUnreachable => "BR015",
            DiagCode::PredictionProofConflict => "BR016",
            DiagCode::ClassifyFixpointFailure => "BR017",
            DiagCode::ConstantConditionBranch => "BR018",
            DiagCode::EstimateDriftConflict => "BR019",
            DiagCode::EstimateUnreachableMass => "BR020",
            DiagCode::EstimateConservationViolation => "BR021",
            DiagCode::EstimateFixpointFailure => "BR022",
            DiagCode::PatchRejected => "BR023",
            DiagCode::FlappingSite => "BR024",
        }
    }

    /// A short hyphenated name, as used in documentation.
    pub fn title(self) -> &'static str {
        match self {
            DiagCode::UnreachableReplica => "unreachable-replica",
            DiagCode::DeadStore => "dead-store",
            DiagCode::UseBeforeDef => "use-before-def",
            DiagCode::OrphanReplicaEdge => "orphan-replica-edge",
            DiagCode::InstStreamMismatch => "inst-stream-mismatch",
            DiagCode::PredictionMismatch => "prediction-mismatch",
            DiagCode::LiveInMismatch => "live-in-mismatch",
            DiagCode::InvalidReplicaMap => "invalid-replica-map",
            DiagCode::HistoryPredictionViolation => "history-prediction-violation",
            DiagCode::HistoryConflict => "history-conflict",
            DiagCode::UnreachableMachineState => "unreachable-machine-state",
            DiagCode::ProductFixpointFailure => "product-fixpoint-failure",
            DiagCode::ProfileProofConflict => "profile-proof-conflict",
            DiagCode::ProfileBiasConflict => "profile-bias-conflict",
            DiagCode::ProfileEventOnUnreachable => "profile-event-on-unreachable",
            DiagCode::PredictionProofConflict => "prediction-proof-conflict",
            DiagCode::ClassifyFixpointFailure => "classify-fixpoint-failure",
            DiagCode::ConstantConditionBranch => "constant-condition-branch",
            DiagCode::EstimateDriftConflict => "estimate-drift-conflict",
            DiagCode::EstimateUnreachableMass => "estimate-unreachable-mass",
            DiagCode::EstimateConservationViolation => "estimate-conservation-violation",
            DiagCode::EstimateFixpointFailure => "estimate-fixpoint-failure",
            DiagCode::PatchRejected => "patch-rejected",
            DiagCode::FlappingSite => "flapping-site",
        }
    }

    /// Every code, in `BR001..` order — the index in this array is the
    /// code's position in [`LintConfig`]'s override table.
    pub const ALL: [DiagCode; 24] = [
        DiagCode::UnreachableReplica,
        DiagCode::DeadStore,
        DiagCode::UseBeforeDef,
        DiagCode::OrphanReplicaEdge,
        DiagCode::InstStreamMismatch,
        DiagCode::PredictionMismatch,
        DiagCode::LiveInMismatch,
        DiagCode::InvalidReplicaMap,
        DiagCode::HistoryPredictionViolation,
        DiagCode::HistoryConflict,
        DiagCode::UnreachableMachineState,
        DiagCode::ProductFixpointFailure,
        DiagCode::ProfileProofConflict,
        DiagCode::ProfileBiasConflict,
        DiagCode::ProfileEventOnUnreachable,
        DiagCode::PredictionProofConflict,
        DiagCode::ClassifyFixpointFailure,
        DiagCode::ConstantConditionBranch,
        DiagCode::EstimateDriftConflict,
        DiagCode::EstimateUnreachableMass,
        DiagCode::EstimateConservationViolation,
        DiagCode::EstimateFixpointFailure,
        DiagCode::PatchRejected,
        DiagCode::FlappingSite,
    ];

    /// The code's index into [`DiagCode::ALL`].
    fn index(self) -> usize {
        match self {
            DiagCode::UnreachableReplica => 0,
            DiagCode::DeadStore => 1,
            DiagCode::UseBeforeDef => 2,
            DiagCode::OrphanReplicaEdge => 3,
            DiagCode::InstStreamMismatch => 4,
            DiagCode::PredictionMismatch => 5,
            DiagCode::LiveInMismatch => 6,
            DiagCode::InvalidReplicaMap => 7,
            DiagCode::HistoryPredictionViolation => 8,
            DiagCode::HistoryConflict => 9,
            DiagCode::UnreachableMachineState => 10,
            DiagCode::ProductFixpointFailure => 11,
            DiagCode::ProfileProofConflict => 12,
            DiagCode::ProfileBiasConflict => 13,
            DiagCode::ProfileEventOnUnreachable => 14,
            DiagCode::PredictionProofConflict => 15,
            DiagCode::ClassifyFixpointFailure => 16,
            DiagCode::ConstantConditionBranch => 17,
            DiagCode::EstimateDriftConflict => 18,
            DiagCode::EstimateUnreachableMass => 19,
            DiagCode::EstimateConservationViolation => 20,
            DiagCode::EstimateFixpointFailure => 21,
            DiagCode::PatchRejected => 22,
            DiagCode::FlappingSite => 23,
        }
    }

    /// The default severity of every diagnostic carrying this code (see
    /// [`LintConfig`] for per-code overrides). The warning codes describe
    /// suspicious-but-sound situations (the simulator zero-initializes
    /// registers, unreachable/dead code cannot execute, an unreached
    /// machine state only wastes size); the rest break the simulation
    /// relation or the history encoding.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::UnreachableReplica
            | DiagCode::DeadStore
            | DiagCode::UseBeforeDef
            | DiagCode::UnreachableMachineState
            | DiagCode::ConstantConditionBranch
            | DiagCode::FlappingSite => Severity::Warning,
            DiagCode::OrphanReplicaEdge
            | DiagCode::InstStreamMismatch
            | DiagCode::PredictionMismatch
            | DiagCode::LiveInMismatch
            | DiagCode::InvalidReplicaMap
            | DiagCode::HistoryPredictionViolation
            | DiagCode::HistoryConflict
            | DiagCode::ProductFixpointFailure
            | DiagCode::ProfileProofConflict
            | DiagCode::ProfileBiasConflict
            | DiagCode::ProfileEventOnUnreachable
            | DiagCode::PredictionProofConflict
            | DiagCode::ClassifyFixpointFailure
            | DiagCode::EstimateDriftConflict
            | DiagCode::EstimateUnreachableMass
            | DiagCode::EstimateConservationViolation
            | DiagCode::EstimateFixpointFailure
            | DiagCode::PatchRejected => Severity::Error,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.as_str(), self.title())
    }
}

/// One finding from a lint or the translation validator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalysisDiag {
    /// The stable code.
    pub code: DiagCode,
    /// Where in the (replicated) module the finding points.
    pub loc: Loc,
    /// A human-readable explanation with the specifics.
    pub message: String,
    /// The *original* branch site the finding is attributable to, when the
    /// emitting analysis knows it (the history checker always does). Used
    /// by the pipeline's per-site quarantine to drop exactly the offending
    /// replication site instead of aborting the whole plan.
    pub site: Option<BranchId>,
}

impl AnalysisDiag {
    /// Builds a diagnostic (not attributed to any site; see
    /// [`AnalysisDiag::with_site`]).
    pub fn new(code: DiagCode, loc: Loc, message: impl Into<String>) -> Self {
        AnalysisDiag {
            code,
            loc,
            message: message.into(),
            site: None,
        }
    }

    /// Attributes the diagnostic to an original branch site (builder
    /// style).
    #[must_use]
    pub fn with_site(mut self, site: BranchId) -> Self {
        self.site = Some(site);
        self
    }

    /// The severity, derived from the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Renders the diagnostic with the function *name* resolved against
    /// `module` (the module the location points into).
    pub fn render(&self, module: &Module) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity(),
            self.code.as_str(),
            module.describe_loc(&self.loc),
            self.message
        )
    }
}

impl fmt::Display for AnalysisDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity(),
            self.code.as_str(),
            self.loc,
            self.message
        )
    }
}

/// A per-code lint level: suppress the code entirely, or force a severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintLevel {
    /// Drop diagnostics with this code.
    Allow,
    /// Report as a warning, regardless of the code's default severity.
    Warn,
    /// Report as an error, regardless of the code's default severity.
    Error,
}

/// Per-code severity overrides for the validators and lints.
///
/// By default every code keeps [`DiagCode::severity`]; a workload (or a
/// pipeline embedding) can suppress a code it has audited, or promote a
/// warning it wants to gate on:
///
/// ```
/// use brepl_analysis::{DiagCode, LintConfig, LintLevel, Severity};
///
/// let cfg = LintConfig::new()
///     .set(DiagCode::DeadStore, LintLevel::Allow)
///     .set(DiagCode::UnreachableReplica, LintLevel::Error);
/// assert_eq!(cfg.effective_severity(DiagCode::DeadStore), None);
/// assert_eq!(
///     cfg.effective_severity(DiagCode::UnreachableReplica),
///     Some(Severity::Error)
/// );
/// // Untouched codes keep their defaults.
/// assert_eq!(
///     cfg.effective_severity(DiagCode::PredictionMismatch),
///     Some(Severity::Error)
/// );
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LintConfig {
    levels: [Option<LintLevel>; DiagCode::ALL.len()],
}

impl LintConfig {
    /// A config with no overrides: every code keeps its default severity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides one code's level (builder style).
    #[must_use]
    pub fn set(mut self, code: DiagCode, level: LintLevel) -> Self {
        self.levels[code.index()] = Some(level);
        self
    }

    /// The effective severity of `code` under this config; `None` means
    /// the code is suppressed.
    pub fn effective_severity(&self, code: DiagCode) -> Option<Severity> {
        match self.levels[code.index()] {
            None => Some(code.severity()),
            Some(LintLevel::Allow) => None,
            Some(LintLevel::Warn) => Some(Severity::Warning),
            Some(LintLevel::Error) => Some(Severity::Error),
        }
    }

    /// Splits `diags` into `(errors, warnings)` under this config,
    /// dropping suppressed codes.
    pub fn partition(&self, diags: Vec<AnalysisDiag>) -> (Vec<AnalysisDiag>, Vec<AnalysisDiag>) {
        let mut errors = Vec::new();
        let mut warnings = Vec::new();
        for d in diags {
            match self.effective_severity(d.code) {
                Some(Severity::Error) => errors.push(d),
                Some(Severity::Warning) => warnings.push(d),
                None => {}
            }
        }
        (errors, warnings)
    }

    /// True when any diagnostic is an error under this config.
    pub fn has_errors(&self, diags: &[AnalysisDiag]) -> bool {
        diags
            .iter()
            .any(|d| self.effective_severity(d.code) == Some(Severity::Error))
    }
}

/// True when any diagnostic has error severity.
pub fn has_errors(diags: &[AnalysisDiag]) -> bool {
    diags.iter().any(|d| d.severity() == Severity::Error)
}

/// Counts `(errors, warnings)`.
pub fn count_by_severity(diags: &[AnalysisDiag]) -> (usize, usize) {
    let errors = diags
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    (errors, diags.len() - errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{BlockId, FuncId};

    #[test]
    fn codes_are_stable() {
        assert_eq!(DiagCode::UnreachableReplica.as_str(), "BR001");
        assert_eq!(DiagCode::DeadStore.as_str(), "BR002");
        assert_eq!(DiagCode::UseBeforeDef.as_str(), "BR003");
        assert_eq!(DiagCode::OrphanReplicaEdge.as_str(), "BR004");
        assert_eq!(DiagCode::InstStreamMismatch.as_str(), "BR005");
        assert_eq!(DiagCode::PredictionMismatch.as_str(), "BR006");
        assert_eq!(DiagCode::LiveInMismatch.as_str(), "BR007");
        assert_eq!(DiagCode::InvalidReplicaMap.as_str(), "BR008");
        assert_eq!(DiagCode::HistoryPredictionViolation.as_str(), "BR009");
        assert_eq!(DiagCode::HistoryConflict.as_str(), "BR010");
        assert_eq!(DiagCode::UnreachableMachineState.as_str(), "BR011");
        assert_eq!(DiagCode::ProductFixpointFailure.as_str(), "BR012");
        assert_eq!(DiagCode::ProfileProofConflict.as_str(), "BR013");
        assert_eq!(DiagCode::ProfileBiasConflict.as_str(), "BR014");
        assert_eq!(DiagCode::ProfileEventOnUnreachable.as_str(), "BR015");
        assert_eq!(DiagCode::PredictionProofConflict.as_str(), "BR016");
        assert_eq!(DiagCode::ClassifyFixpointFailure.as_str(), "BR017");
        assert_eq!(DiagCode::ConstantConditionBranch.as_str(), "BR018");
        assert_eq!(DiagCode::EstimateDriftConflict.as_str(), "BR019");
        assert_eq!(DiagCode::EstimateUnreachableMass.as_str(), "BR020");
        assert_eq!(DiagCode::EstimateConservationViolation.as_str(), "BR021");
        assert_eq!(DiagCode::EstimateFixpointFailure.as_str(), "BR022");
        assert_eq!(DiagCode::PatchRejected.as_str(), "BR023");
        assert_eq!(DiagCode::FlappingSite.as_str(), "BR024");
        // The ALL order is the BR-number order, and index() agrees with it.
        for (i, c) in DiagCode::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(c.as_str(), format!("BR{:03}", i + 1));
        }
    }

    #[test]
    fn severity_split() {
        assert_eq!(DiagCode::UnreachableReplica.severity(), Severity::Warning);
        assert_eq!(DiagCode::DeadStore.severity(), Severity::Warning);
        assert_eq!(DiagCode::UseBeforeDef.severity(), Severity::Warning);
        assert_eq!(DiagCode::OrphanReplicaEdge.severity(), Severity::Error);
        assert_eq!(DiagCode::InstStreamMismatch.severity(), Severity::Error);
        assert_eq!(DiagCode::PredictionMismatch.severity(), Severity::Error);
        assert_eq!(DiagCode::LiveInMismatch.severity(), Severity::Error);
        assert_eq!(DiagCode::InvalidReplicaMap.severity(), Severity::Error);
        assert_eq!(
            DiagCode::HistoryPredictionViolation.severity(),
            Severity::Error
        );
        assert_eq!(DiagCode::HistoryConflict.severity(), Severity::Error);
        assert_eq!(
            DiagCode::UnreachableMachineState.severity(),
            Severity::Warning
        );
        assert_eq!(DiagCode::ProductFixpointFailure.severity(), Severity::Error);
        // The profile-vs-proof gate (BR013-BR017) is a corruption detector:
        // every conflict code defaults to error. Only the vestigial-branch
        // lint is advisory.
        assert_eq!(DiagCode::ProfileProofConflict.severity(), Severity::Error);
        assert_eq!(DiagCode::ProfileBiasConflict.severity(), Severity::Error);
        assert_eq!(
            DiagCode::ProfileEventOnUnreachable.severity(),
            Severity::Error
        );
        assert_eq!(
            DiagCode::PredictionProofConflict.severity(),
            Severity::Error
        );
        assert_eq!(
            DiagCode::ClassifyFixpointFailure.severity(),
            Severity::Error
        );
        assert_eq!(
            DiagCode::ConstantConditionBranch.severity(),
            Severity::Warning
        );
        // The estimate drift gate (BR019-BR022) is a corruption detector
        // like the classification gate: every code defaults to error.
        assert_eq!(DiagCode::EstimateDriftConflict.severity(), Severity::Error);
        assert_eq!(
            DiagCode::EstimateUnreachableMass.severity(),
            Severity::Error
        );
        assert_eq!(
            DiagCode::EstimateConservationViolation.severity(),
            Severity::Error
        );
        assert_eq!(
            DiagCode::EstimateFixpointFailure.severity(),
            Severity::Error
        );
        // Re-specialization: a rejected/rolled-back patch is an error (the
        // patch never ships), while a flapping site is advisory — the
        // shipped program is still the last gate-clean one.
        assert_eq!(DiagCode::PatchRejected.severity(), Severity::Error);
        assert_eq!(DiagCode::FlappingSite.severity(), Severity::Warning);
    }

    #[test]
    fn lint_config_overrides_and_partitions() {
        let cfg = LintConfig::new()
            .set(DiagCode::DeadStore, LintLevel::Error)
            .set(DiagCode::UnreachableReplica, LintLevel::Allow)
            .set(DiagCode::PredictionMismatch, LintLevel::Warn);
        assert_eq!(
            cfg.effective_severity(DiagCode::DeadStore),
            Some(Severity::Error)
        );
        assert_eq!(cfg.effective_severity(DiagCode::UnreachableReplica), None);
        assert_eq!(
            cfg.effective_severity(DiagCode::PredictionMismatch),
            Some(Severity::Warning)
        );
        // Untouched codes keep defaults.
        assert_eq!(
            cfg.effective_severity(DiagCode::HistoryConflict),
            Some(Severity::Error)
        );

        let loc = Loc::block(FuncId(0), BlockId(0));
        let diags = vec![
            AnalysisDiag::new(DiagCode::DeadStore, loc, "promoted"),
            AnalysisDiag::new(DiagCode::UnreachableReplica, loc, "dropped"),
            AnalysisDiag::new(DiagCode::PredictionMismatch, loc, "demoted"),
        ];
        assert!(cfg.has_errors(&diags));
        let (errors, warnings) = cfg.partition(diags);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, DiagCode::DeadStore);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].code, DiagCode::PredictionMismatch);

        // The default config reproduces the plain has_errors split.
        let default = LintConfig::new();
        let diags = vec![AnalysisDiag::new(DiagCode::DeadStore, loc, "warn")];
        assert!(!default.has_errors(&diags));
        let (e, w) = default.partition(diags);
        assert!(e.is_empty());
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn lint_config_covers_classification_codes() {
        // The override table is sized by DiagCode::ALL, so the new codes
        // thread through set/effective_severity/partition like the old.
        let cfg = LintConfig::new()
            .set(DiagCode::ProfileProofConflict, LintLevel::Warn)
            .set(DiagCode::ConstantConditionBranch, LintLevel::Error)
            .set(DiagCode::ProfileBiasConflict, LintLevel::Allow);
        assert_eq!(
            cfg.effective_severity(DiagCode::ProfileProofConflict),
            Some(Severity::Warning)
        );
        assert_eq!(
            cfg.effective_severity(DiagCode::ConstantConditionBranch),
            Some(Severity::Error)
        );
        assert_eq!(cfg.effective_severity(DiagCode::ProfileBiasConflict), None);
        // Untouched classification codes keep their defaults.
        assert_eq!(
            cfg.effective_severity(DiagCode::ProfileEventOnUnreachable),
            Some(Severity::Error)
        );
        assert_eq!(
            cfg.effective_severity(DiagCode::PredictionProofConflict),
            Some(Severity::Error)
        );
        assert_eq!(
            cfg.effective_severity(DiagCode::ClassifyFixpointFailure),
            Some(Severity::Error)
        );

        let loc = Loc::block(FuncId(0), BlockId(0));
        let diags = vec![
            AnalysisDiag::new(DiagCode::ProfileProofConflict, loc, "demoted"),
            AnalysisDiag::new(DiagCode::ProfileBiasConflict, loc, "dropped"),
            AnalysisDiag::new(DiagCode::ConstantConditionBranch, loc, "promoted"),
            AnalysisDiag::new(DiagCode::ProfileEventOnUnreachable, loc, "default"),
        ];
        let (errors, warnings) = cfg.partition(diags);
        assert_eq!(errors.len(), 2);
        assert_eq!(errors[0].code, DiagCode::ConstantConditionBranch);
        assert_eq!(errors[1].code, DiagCode::ProfileEventOnUnreachable);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].code, DiagCode::ProfileProofConflict);
    }

    #[test]
    fn lint_config_covers_estimate_codes() {
        // BR019-BR022 thread through the auto-sized override table just
        // like every earlier batch of codes.
        let cfg = LintConfig::new()
            .set(DiagCode::EstimateDriftConflict, LintLevel::Warn)
            .set(DiagCode::EstimateUnreachableMass, LintLevel::Allow)
            .set(DiagCode::EstimateFixpointFailure, LintLevel::Warn);
        assert_eq!(
            cfg.effective_severity(DiagCode::EstimateDriftConflict),
            Some(Severity::Warning)
        );
        assert_eq!(
            cfg.effective_severity(DiagCode::EstimateUnreachableMass),
            None
        );
        assert_eq!(
            cfg.effective_severity(DiagCode::EstimateFixpointFailure),
            Some(Severity::Warning)
        );
        // Untouched estimate codes keep their error default.
        assert_eq!(
            cfg.effective_severity(DiagCode::EstimateConservationViolation),
            Some(Severity::Error)
        );

        let loc = Loc::block(FuncId(0), BlockId(0));
        let diags = vec![
            AnalysisDiag::new(DiagCode::EstimateDriftConflict, loc, "demoted"),
            AnalysisDiag::new(DiagCode::EstimateUnreachableMass, loc, "dropped"),
            AnalysisDiag::new(DiagCode::EstimateConservationViolation, loc, "default"),
        ];
        assert!(cfg.has_errors(&diags));
        let (errors, warnings) = cfg.partition(diags);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, DiagCode::EstimateConservationViolation);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].code, DiagCode::EstimateDriftConflict);
    }

    #[test]
    fn lint_config_covers_respec_codes() {
        // BR023/BR024 thread through the auto-sized override table just
        // like every earlier batch of codes.
        let cfg = LintConfig::new()
            .set(DiagCode::PatchRejected, LintLevel::Warn)
            .set(DiagCode::FlappingSite, LintLevel::Error);
        assert_eq!(
            cfg.effective_severity(DiagCode::PatchRejected),
            Some(Severity::Warning)
        );
        assert_eq!(
            cfg.effective_severity(DiagCode::FlappingSite),
            Some(Severity::Error)
        );
        // Untouched, they keep their defaults.
        let default = LintConfig::new();
        assert_eq!(
            default.effective_severity(DiagCode::PatchRejected),
            Some(Severity::Error)
        );
        assert_eq!(
            default.effective_severity(DiagCode::FlappingSite),
            Some(Severity::Warning)
        );

        let loc = Loc::block(FuncId(0), BlockId(0));
        let diags = vec![
            AnalysisDiag::new(DiagCode::PatchRejected, loc, "demoted"),
            AnalysisDiag::new(DiagCode::FlappingSite, loc, "promoted"),
        ];
        let (errors, warnings) = cfg.partition(diags);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, DiagCode::FlappingSite);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].code, DiagCode::PatchRejected);
    }

    #[test]
    fn display_and_error_detection() {
        let warn = AnalysisDiag::new(
            DiagCode::DeadStore,
            Loc::inst(FuncId(0), BlockId(1), 2),
            "r3 is never read",
        );
        assert_eq!(
            warn.to_string(),
            "warning[BR002] f0:b1:i2: r3 is never read"
        );
        assert!(!has_errors(std::slice::from_ref(&warn)));
        let err = AnalysisDiag::new(
            DiagCode::OrphanReplicaEdge,
            Loc::term(FuncId(0), BlockId(1)),
            "edge b1 -> b9 has no original counterpart",
        );
        assert!(has_errors(&[warn.clone(), err.clone()]));
        assert_eq!(count_by_severity(&[warn, err]), (1, 1));
    }
}
