//! Static misprediction bound and code-size cost of a replication.
//!
//! The history fixpoint of [`crate::solve_site_product`] tells us *which*
//! machine states reach each replica; folding the profiled branch
//! frequencies through the same product tells us *how often* each pinned
//! prediction is wrong. [`static_cost`] performs that fold by replaying the
//! profiling trace through the replicated control flow: the trace fixes the
//! outcome of every conditional branch, so the walk deterministically
//! traverses exactly the product path the training run would, charging a
//! miss wherever the pinned prediction at the replica branch disagrees with
//! the recorded outcome.
//!
//! Because the fold is exact over the training trace, the computed bound
//! equals the simulator-measured misprediction count on the same input —
//! making `bound >= simulated` a differential invariant the test suite and
//! the `staticcheck` bench binary both enforce. Like
//! [`crate::check_history`], the replay never touches the replica-map
//! witness: it needs only the shipped module, branch provenance, the pinned
//! [`StaticPrediction`] and the profiling [`Trace`].

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use brepl_ir::{BlockId, BranchId, FuncId, Inst, Module, Term};
use brepl_predict::StaticPrediction;
use brepl_trace::Trace;

/// Instruction/terminator steps allowed between two branch events before
/// the replay declares the module corrupt (an event-free infinite loop can
/// only arise from a broken transform, never from a trace-faithful one).
const MAX_STEPS_BETWEEN_EVENTS: u64 = 1_000_000;

/// The static misprediction bound for one original branch site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteCost {
    /// The original (pre-replication) branch site.
    pub site: BranchId,
    /// How many times the site executed in the profiling trace.
    pub executions: u64,
    /// Upper bound on mispredictions the pinned predictions incur at this
    /// site over the profiling trace.
    pub bound: u64,
}

/// The static cost of a replication over one profiling trace.
#[derive(Clone, Debug, PartialEq)]
pub struct CostReport {
    /// Per original-site bounds, in site order.
    pub sites: Vec<SiteCost>,
    /// Total branch events replayed.
    pub total_events: u64,
    /// Size of the original module in IR size units.
    pub original_size: usize,
    /// Size of the replicated module in IR size units.
    pub replicated_size: usize,
}

impl CostReport {
    /// Total misprediction bound across all sites.
    pub fn total_bound(&self) -> u64 {
        self.sites.iter().map(|s| s.bound).sum()
    }

    /// The bound as a percentage of executed branches.
    pub fn bound_percent(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            100.0 * self.total_bound() as f64 / self.total_events as f64
        }
    }

    /// Code-size growth of the replication in percent (0 = unchanged).
    pub fn size_growth_percent(&self) -> f64 {
        if self.original_size == 0 {
            0.0
        } else {
            100.0 * (self.replicated_size as f64 / self.original_size as f64 - 1.0)
        }
    }
}

/// Why a replay-based cost fold could not complete. Every variant means
/// the replicated module and the profiling trace disagree structurally —
/// itself a validation finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CostError {
    /// The entry function does not exist in the replicated module.
    UnknownEntry(String),
    /// A `Call` targets a function that does not exist.
    UnknownCallee(String),
    /// The replay reached a conditional branch but the trace had no more
    /// events.
    TraceExhausted {
        /// Original site of the branch the replay was about to resolve.
        at_site: BranchId,
    },
    /// The replay finished but trace events remain — the replicated module
    /// executes fewer branches than the original did.
    TraceLeftover {
        /// Number of unconsumed events.
        remaining: usize,
    },
    /// A replica branch's provenance disagrees with the next trace event.
    SiteMismatch {
        /// Original site the replica claims to descend from.
        expected: BranchId,
        /// Site the trace recorded at this point.
        found: BranchId,
    },
    /// Too many steps without consuming an event: an event-free loop.
    Runaway,
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::UnknownEntry(name) => write!(f, "entry function `{name}` not found"),
            CostError::UnknownCallee(name) => write!(f, "call to unknown function `{name}`"),
            CostError::TraceExhausted { at_site } => write!(
                f,
                "trace exhausted: replay reached a branch of site {at_site} with no event left"
            ),
            CostError::TraceLeftover { remaining } => write!(
                f,
                "replay returned from entry with {remaining} trace events unconsumed"
            ),
            CostError::SiteMismatch { expected, found } => write!(
                f,
                "replay diverged: replica of site {expected} met a trace event for site {found}"
            ),
            CostError::Runaway => write!(
                f,
                "replay took {MAX_STEPS_BETWEEN_EVENTS} steps without reaching a branch"
            ),
        }
    }
}

impl Error for CostError {}

/// Folds the profiling `trace` through the replicated control flow,
/// returning per-site misprediction bounds and the size growth.
///
/// `replicated` must carry dense branch sites (post-renumbering) with
/// `provenance` mapping them back to the original sites the `trace` was
/// recorded against; `predictions` are the pinned per-replica directions.
/// The replay starts at `entry` and follows the trace's branch outcomes,
/// so it needs no operand values: direct calls push a return frame, `Ret`
/// pops it, and every conditional branch consumes the next trace event.
///
/// # Errors
///
/// Returns a [`CostError`] when the trace and the replicated module
/// disagree structurally — which, for a trace recorded from the original
/// module, means the replication changed observable branching behavior.
pub fn static_cost(
    original: &Module,
    replicated: &Module,
    provenance: &[BranchId],
    predictions: &StaticPrediction,
    trace: &Trace,
    entry: &str,
) -> Result<CostReport, CostError> {
    let entry_fid = replicated
        .function_by_name(entry)
        .ok_or_else(|| CostError::UnknownEntry(entry.to_string()))?;

    let mut counts: BTreeMap<BranchId, (u64, u64)> = BTreeMap::new();
    let mut events = trace.iter();
    let mut consumed = 0u64;

    let mut frames: Vec<(FuncId, BlockId, usize)> = Vec::new();
    let mut fid = entry_fid;
    let mut bid = BlockId(0);
    let mut ii = 0usize;
    let mut steps_since_event = 0u64;

    'run: loop {
        steps_since_event += 1;
        if steps_since_event > MAX_STEPS_BETWEEN_EVENTS {
            return Err(CostError::Runaway);
        }
        let block = replicated.function(fid).block(bid);
        if let Some(inst) = block.insts.get(ii) {
            if let Inst::Call { callee, .. } = inst {
                let target = replicated
                    .function_by_name(callee)
                    .ok_or_else(|| CostError::UnknownCallee(callee.clone()))?;
                frames.push((fid, bid, ii + 1));
                fid = target;
                bid = BlockId(0);
                ii = 0;
            } else {
                ii += 1;
            }
            continue;
        }
        match block.term {
            Term::Jmp { target } => {
                bid = target;
                ii = 0;
            }
            Term::Br {
                site, then_, else_, ..
            } => {
                let origin = provenance.get(site.index()).copied().unwrap_or(site);
                let Some(ev) = events.next() else {
                    return Err(CostError::TraceExhausted { at_site: origin });
                };
                if ev.site != origin {
                    return Err(CostError::SiteMismatch {
                        expected: origin,
                        found: ev.site,
                    });
                }
                consumed += 1;
                steps_since_event = 0;
                let entry = counts.entry(origin).or_insert((0, 0));
                entry.0 += 1;
                if predictions.get(site) != ev.taken {
                    entry.1 += 1;
                }
                bid = if ev.taken { then_ } else { else_ };
                ii = 0;
            }
            Term::Ret { .. } => match frames.pop() {
                Some((rf, rb, ri)) => {
                    fid = rf;
                    bid = rb;
                    ii = ri;
                }
                None => break 'run,
            },
        }
    }

    let remaining = trace.len() - consumed as usize;
    if remaining != 0 {
        return Err(CostError::TraceLeftover { remaining });
    }

    Ok(CostReport {
        sites: counts
            .into_iter()
            .map(|(site, (executions, bound))| SiteCost {
                site,
                executions,
                bound,
            })
            .collect(),
        total_events: consumed,
        original_size: original.size_units(),
        replicated_size: replicated.size_units(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};
    use brepl_trace::TraceEvent;

    /// `for i in 0..4 { }` with branch site 0: events T,T,T,N.
    fn counted_loop() -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let i = b.reg();
        b.const_int(i, 0);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(i.into(), Operand::imm(4));
        b.br(c, body, exit);
        b.switch_to(body);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        m.renumber_branches();
        m
    }

    fn loop_trace() -> Trace {
        let mut t = Trace::new();
        for taken in [true, true, true, true, false] {
            t.push(TraceEvent {
                site: BranchId(0),
                taken,
            });
        }
        t
    }

    #[test]
    fn unreplicated_replay_counts_minority() {
        let m = counted_loop();
        let provenance: Vec<BranchId> = vec![BranchId(0)];
        let mut p = StaticPrediction::with_default(true);
        p.set(BranchId(0), true);
        let report =
            static_cost(&m, &m, &provenance, &p, &loop_trace(), "main").expect("replay ok");
        assert_eq!(report.total_events, 5);
        assert_eq!(report.total_bound(), 1); // only the exit mispredicts
        assert_eq!(report.sites.len(), 1);
        assert_eq!(report.sites[0].executions, 5);
        assert_eq!(report.size_growth_percent(), 0.0);
        assert!((report.bound_percent() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn trace_mismatches_are_reported() {
        let m = counted_loop();
        let provenance = vec![BranchId(0)];
        let p = StaticPrediction::with_default(true);

        let mut short = loop_trace();
        short.truncate(3);
        assert_eq!(
            static_cost(&m, &m, &provenance, &p, &short, "main"),
            Err(CostError::TraceExhausted {
                at_site: BranchId(0)
            })
        );

        let mut long = loop_trace();
        long.push(TraceEvent {
            site: BranchId(0),
            taken: false,
        });
        assert_eq!(
            static_cost(&m, &m, &provenance, &p, &long, "main"),
            Err(CostError::TraceLeftover { remaining: 1 })
        );

        let mut wrong_site = Trace::new();
        wrong_site.push(TraceEvent {
            site: BranchId(9),
            taken: true,
        });
        assert_eq!(
            static_cost(&m, &m, &provenance, &p, &wrong_site, "main"),
            Err(CostError::SiteMismatch {
                expected: BranchId(0),
                found: BranchId(9),
            })
        );

        assert_eq!(
            static_cost(&m, &m, &provenance, &p, &loop_trace(), "nope"),
            Err(CostError::UnknownEntry("nope".into()))
        );
    }

    #[test]
    fn event_free_loop_is_runaway_not_hang() {
        // main: b0 -> b1 -> b1 (jmp self) — no branches, never returns.
        let mut b = FunctionBuilder::new("main", 0);
        let spin = b.new_block();
        b.jmp(spin);
        b.switch_to(spin);
        b.jmp(spin);
        let mut m = Module::new();
        m.push_function(b.finish());
        let p = StaticPrediction::with_default(true);
        assert_eq!(
            static_cost(&m, &m, &[], &p, &Trace::new(), "main"),
            Err(CostError::Runaway)
        );
    }
}
