//! # brepl-analysis — dataflow analyses and static translation validation
//!
//! Code replication (Krall, PLDI 1994) rewrites whole loop nests so branch
//! history is encoded in the program counter. This crate provides the
//! static machinery to trust that rewrite — and to reason about the IR in
//! general:
//!
//! * a generic **worklist dataflow solver** ([`solve`]) over
//!   [`brepl_cfg::Cfg`] graphs, parameterized by direction and meet
//!   ([`DataflowAnalysis`] for arbitrary lattices, [`GenKill`] for
//!   bit-vector problems);
//! * concrete analyses for the non-SSA register IR: [`liveness`],
//!   [`reaching_defs`], [`use_before_def`] and [`reachable_blocks`];
//! * a **translation validator** ([`validate_replication`]) that checks a
//!   simulation relation between an original module and its replicated
//!   form, using the [`ReplicaMap`] witness the replicator emits;
//! * a **witness-independent history checker** ([`check_history`]) that
//!   re-proves the encoding by abstract interpretation over the product of
//!   the replicated CFG with each branch machine's transition table
//!   ([`solve_site_product`]) — its trust base deliberately excludes the
//!   `ReplicaMap`, so a transform bug that corrupts code and witness
//!   consistently still gets caught;
//! * a **static cost model** ([`static_cost`]) folding the profiling trace
//!   through the replicated control flow for per-site misprediction bounds
//!   and code-size growth;
//! * a diagnostics layer ([`AnalysisDiag`]) with stable codes `BR001`
//!   through `BR012`, [`lint_module`] for the warning-severity lints, and
//!   [`LintConfig`] for per-code severity overrides.
//!
//! ```
//! use brepl_analysis::{validate_replication, ReplicaMap};
//! use brepl_ir::{FunctionBuilder, Module};
//! use brepl_predict::StaticPrediction;
//!
//! let mut b = FunctionBuilder::new("main", 0);
//! b.ret(None);
//! let mut m = Module::new();
//! m.push_function(b.finish());
//!
//! // A module trivially simulates itself under the identity witness.
//! let map = ReplicaMap::identity(&m);
//! let predictions = StaticPrediction::with_default(true);
//! assert!(validate_replication(&m, &m, &map, &predictions).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod classify;
mod const_prop;
mod cost;
mod diag;
mod freq;
mod history;
mod incremental;
mod interval;
mod lint;
mod liveness;
mod product;
mod reach;
mod reaching;
mod replica_map;
mod solver;
mod uninit;
mod validate;

pub use bitset::BitSet;
pub use classify::{
    classification_diags, classify_module, prediction_proof_diags, Classification, DirectionClass,
    SiteClass,
};
pub use const_prop::{AbsVal, ConstProp, Env, FuncValues};
pub use cost::{static_cost, CostError, CostReport, SiteCost};
pub use diag::{
    count_by_severity, has_errors, AnalysisDiag, DiagCode, LintConfig, LintLevel, Severity,
};
pub use freq::{
    bias_error, estimate_profile, static_profile_diags, BiasEstimate, FuncProfile, SiteEstimate,
    StaticProfile, CONSERVATION_EPS,
};
pub use history::check_history;
pub use incremental::{
    check_history_cached, check_patch_cached, validate_replication_cached, GateCache,
};
pub use interval::Interval;
pub use lint::{dead_store_diags, lint_module, unreachable_diags, use_before_def_diags};
pub use liveness::{liveness, term_uses, Liveness};
pub use product::{
    solve_site_product, HistorySpec, MachineTable, ProductSolution, TableState, MAX_PRODUCT_NODES,
};
pub use reach::{reachable_blocks, unreachable_blocks};
pub use reaching::{reaching_defs, DefSite, ReachingDefs};
pub use replica_map::{ReplicaFuncMap, ReplicaMap};
pub use solver::{
    default_solve_budget, solve, solve_metered, DataflowAnalysis, DataflowSolution, Direction,
    GenKill, Meet, SolveStats,
};
pub use uninit::{use_before_def, UseBeforeDef};
pub use validate::validate_replication;
