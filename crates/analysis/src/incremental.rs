//! Incremental re-proving of the static gate stack.
//!
//! The pipeline's refinement/quarantine loop re-replicates and re-gates
//! after every site drop, but a drop only changes the functions the
//! dropped sites live in: every other function's replicated form, witness
//! slice, provenance slice and shipped predictions are bit-identical to
//! the previous round, and so are its diagnostics. [`GateCache`] exploits
//! that: per-function (translation validator) and per-site (history
//! checker) results are keyed by a fingerprint of *everything the check
//! reads*, and a key hit replays the stored diagnostics instead of
//! re-running the solver.
//!
//! Correctness rests on the keys being complete:
//!
//! * [`validate_one_function`](crate::validate::validate_one_function)
//!   reads the original function (fixed for the whole pipeline run — the
//!   cache lives no longer than one run), the replicated function, the
//!   function's `ReplicaFuncMap` slice, and `predictions.get(site)` for
//!   branch sites of the replicated function. The key mixes the
//!   replicated function's structural fingerprint, the map slice, and
//!   every (site, shipped prediction) pair.
//! * [`site_history_diags`](crate::history::site_history_diags) reads the
//!   machine table, the one function containing the site's replicas (the
//!   product is intra-function), the provenance entries of that
//!   function's branch sites, and their shipped predictions. The key
//!   mixes all four; a site whose replicas cannot be attributed to
//!   exactly one function (gone, or — only via a corrupted provenance —
//!   spread over several) is re-proved from scratch every round.
//!
//! Diagnostic *order* is preserved exactly: both cached entry points walk
//! the same iteration order as their from-scratch counterparts and only
//! substitute each step's result.

use std::collections::HashMap;

use brepl_ir::{BranchId, FuncId, Module};
use brepl_predict::StaticPrediction;

use crate::diag::AnalysisDiag;
use crate::history::site_history_diags;
use crate::product::{HistorySpec, MachineTable};
use crate::replica_map::{ReplicaFuncMap, ReplicaMap};
use crate::validate::validate_one_function;

/// Dual-lane FNV-1a accumulator — the same construction as the module
/// fingerprint, rebuilt here for the cache keys.
struct Lanes {
    a: u64,
    b: u64,
}

impl Lanes {
    fn new() -> Self {
        Lanes {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    fn mix(&mut self, x: u64) {
        self.a = (self.a ^ x).wrapping_mul(0x0000_0100_0000_01b3);
        self.b = (self.b ^ x.rotate_left(32)).wrapping_mul(0x0000_01b3_0000_0193);
    }

    fn finish(self) -> (u64, u64) {
        (self.a, self.b)
    }
}

type Key = (u64, u64);

/// Round-to-round memo for the pipeline's static gates. One instance per
/// pipeline run: the original module must not change underneath it.
#[derive(Default)]
pub struct GateCache {
    /// Per-function validator results, keyed by everything
    /// `validate_one_function` reads beyond the (fixed) original.
    validate: HashMap<FuncId, (Key, Vec<AnalysisDiag>)>,
    /// Per-site history-checker results.
    history: HashMap<BranchId, (Key, Vec<AnalysisDiag>)>,
    /// Cache hits replayed so far.
    hits: usize,
}

impl GateCache {
    /// An empty cache.
    pub fn new() -> Self {
        GateCache::default()
    }

    /// Cache hits replayed since construction (tests and diagnostics).
    pub fn hits(&self) -> usize {
        self.hits
    }
}

/// [`crate::validate_replication`] with round-to-round reuse: functions
/// whose replicated form, witness slice and shipped predictions are
/// unchanged replay their previous diagnostics. The returned list is
/// identical to the from-scratch call.
pub fn validate_replication_cached(
    original: &Module,
    replicated: &Module,
    map: &ReplicaMap,
    predictions: &StaticPrediction,
    cache: &mut GateCache,
) -> Vec<AnalysisDiag> {
    let mut diags = Vec::new();

    // The global shape check is cheap and guards the per-function walk;
    // rerun it every round, exactly as the from-scratch validator does.
    if map.functions.len() != replicated.function_count()
        || original.function_count() != replicated.function_count()
    {
        return crate::validate_replication(original, replicated, map, predictions);
    }

    for (fid, rfunc) in replicated.iter_functions() {
        let ofunc = original.function(fid);
        let fmap = &map.functions[fid.index()];
        let key = validate_key(fid, rfunc, fmap, predictions);
        match cache.validate.get(&fid) {
            Some((k, cached)) if *k == key => {
                cache.hits += 1;
                diags.extend(cached.iter().cloned());
            }
            _ => {
                let fresh = validate_one_function(fid, ofunc, rfunc, fmap, predictions);
                diags.extend(fresh.iter().cloned());
                cache.validate.insert(fid, (key, fresh));
            }
        }
    }
    diags
}

/// [`crate::check_history`] with round-to-round reuse: sites whose
/// machine table, containing function, provenance slice and shipped
/// predictions are unchanged replay their previous diagnostics. The
/// returned list is identical to the from-scratch call.
pub fn check_history_cached(
    replicated: &Module,
    provenance: &[BranchId],
    spec: &HistorySpec,
    predictions: &StaticPrediction,
    cache: &mut GateCache,
) -> Vec<AnalysisDiag> {
    // One pass over the module: which function holds the replicas of each
    // original site, and each function's key ingredients. A site present
    // in several functions (impossible for an honest provenance, but the
    // chaos harness corrupts things) maps to `None` and skips the cache.
    let mut home: HashMap<BranchId, Option<FuncId>> = HashMap::new();
    for (fid, f) in replicated.iter_functions() {
        for (_, block) in f.iter_blocks() {
            let Some(new_site) = block.term.branch_site() else {
                continue;
            };
            let Some(&orig) = provenance.get(new_site.index()) else {
                continue;
            };
            match home.entry(orig).or_insert(Some(fid)) {
                Some(prev) if *prev != fid => {
                    home.insert(orig, None);
                }
                _ => {}
            }
        }
    }

    let mut fn_keys: HashMap<FuncId, Key> = HashMap::new();
    let mut diags = Vec::new();
    for (&site, table) in &spec.machines {
        let keyed_fid = home.get(&site).copied().flatten();
        let Some(fid) = keyed_fid else {
            // No single home function: re-prove from scratch, uncached.
            diags.extend(site_history_diags(
                replicated,
                provenance,
                site,
                table,
                predictions,
            ));
            continue;
        };
        let fn_key = *fn_keys
            .entry(fid)
            .or_insert_with(|| history_fn_key(fid, replicated, provenance, predictions));
        let key = history_key(fn_key, table);
        match cache.history.get(&site) {
            Some((k, cached)) if *k == key => {
                cache.hits += 1;
                diags.extend(cached.iter().cloned());
            }
            _ => {
                let fresh = site_history_diags(replicated, provenance, site, table, predictions);
                diags.extend(fresh.iter().cloned());
                cache.history.insert(site, (key, fresh));
            }
        }
    }
    diags
}

/// The patch-scoped gate: re-proves a candidate re-specialization patch
/// under the full BR001–BR012 stack — translation validation against the
/// original module plus the witness-independent history check — through
/// one shared [`GateCache`]. A patch dirties at most the functions and
/// sites it touched, so consecutive calls across a run pay only for the
/// dirtied slices. Returns every diagnostic; the patch may commit only
/// when none has error severity (see [`crate::has_errors`]).
#[allow(clippy::too_many_arguments)]
pub fn check_patch_cached(
    original: &Module,
    replicated: &Module,
    map: &ReplicaMap,
    provenance: &[BranchId],
    spec: &HistorySpec,
    predictions: &StaticPrediction,
    cache: &mut GateCache,
) -> Vec<AnalysisDiag> {
    let mut diags = validate_replication_cached(original, replicated, map, predictions, cache);
    diags.extend(check_history_cached(
        replicated,
        provenance,
        spec,
        predictions,
        cache,
    ));
    diags
}

/// Key for one function's validator slice: the replicated function's
/// structure, its witness slice, and every shipped prediction the checks
/// can read.
fn validate_key(
    fid: FuncId,
    rfunc: &brepl_ir::Function,
    fmap: &ReplicaFuncMap,
    predictions: &StaticPrediction,
) -> Key {
    let mut h = Lanes::new();
    h.mix(fid.index() as u64);
    let (fa, fb) = rfunc.fingerprint();
    h.mix(fa);
    h.mix(fb);
    h.mix(fmap.origins.len() as u64);
    for chain in &fmap.origins {
        h.mix(chain.len() as u64);
        for o in chain {
            h.mix(o.index() as u64);
        }
    }
    h.mix(fmap.machine_predictions.len() as u64);
    for p in &fmap.machine_predictions {
        h.mix(match p {
            None => 2,
            Some(false) => 0,
            Some(true) => 1,
        });
    }
    for (_, block) in rfunc.iter_blocks() {
        if let Some(site) = block.term.branch_site() {
            h.mix(site.index() as u64);
            h.mix(u64::from(predictions.get(site)));
        }
    }
    h.finish()
}

/// Key ingredients shared by every site homed in `fid`: the function's
/// structure plus the provenance and shipped prediction of each of its
/// branch sites.
fn history_fn_key(
    fid: FuncId,
    replicated: &Module,
    provenance: &[BranchId],
    predictions: &StaticPrediction,
) -> Key {
    let f = replicated.function(fid);
    let mut h = Lanes::new();
    h.mix(fid.index() as u64);
    let (fa, fb) = f.fingerprint();
    h.mix(fa);
    h.mix(fb);
    for (_, block) in f.iter_blocks() {
        if let Some(new_site) = block.term.branch_site() {
            h.mix(new_site.index() as u64);
            h.mix(
                provenance
                    .get(new_site.index())
                    .map_or(u64::MAX, |o| o.index() as u64),
            );
            h.mix(u64::from(predictions.get(new_site)));
        }
    }
    h.finish()
}

/// Full history key: the home function's key plus the machine table.
fn history_key(fn_key: Key, table: &MachineTable) -> Key {
    let mut h = Lanes::new();
    h.mix(fn_key.0);
    h.mix(fn_key.1);
    h.mix(table.initial as u64);
    h.mix(table.states.len() as u64);
    for s in &table.states {
        h.mix(u64::from(s.predict));
        h.mix(s.on_taken as u64);
        h.mix(s.on_not_taken as u64);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::TableState;
    use brepl_ir::{FunctionBuilder, Operand};

    /// The same hand-replicated flip-flop as `history.rs`'s tests: two
    /// replicas of one alternating loop branch, each pinning its machine
    /// state's prediction and branching into the other state's copy.
    fn replicated_flip_flop() -> (Module, Vec<BranchId>) {
        let mut b = FunctionBuilder::new("main", 1);
        let n = b.param(0);
        let i = b.reg();
        b.const_int(i, 0);
        let head0 = b.new_block();
        let body0 = b.new_block();
        let head1 = b.new_block();
        let body1 = b.new_block();
        let exit = b.new_block();
        b.jmp(head0);
        b.switch_to(head0);
        let c0 = b.lt(i.into(), n.into());
        b.br(c0, body0, exit);
        b.switch_to(body0);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head1);
        b.switch_to(head1);
        let c1 = b.lt(i.into(), n.into());
        b.br(c1, body1, exit);
        b.switch_to(body1);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head0);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        (m, vec![BranchId(0), BranchId(0)])
    }

    fn wired_machine() -> MachineTable {
        MachineTable {
            states: vec![
                TableState {
                    predict: true,
                    on_taken: 1,
                    on_not_taken: 0,
                },
                TableState {
                    predict: false,
                    on_taken: 0,
                    on_not_taken: 1,
                },
            ],
            initial: 0,
        }
    }

    fn flip_flop_spec() -> (Module, Vec<BranchId>, HistorySpec, StaticPrediction) {
        let (m, prov) = replicated_flip_flop();
        let table = wired_machine();
        let mut predictions = StaticPrediction::with_default(true);
        predictions.set(BranchId(0), true);
        predictions.set(BranchId(1), false);
        let mut spec = HistorySpec::new();
        spec.insert(BranchId(0), table);
        (m, prov, spec, predictions)
    }

    #[test]
    fn cached_validate_replays_identical_diags() {
        let (m, _) = replicated_flip_flop();
        let map = ReplicaMap::identity(&m);
        // Pin the wrong direction on one site so diagnostics are non-empty
        // and the replay has something real to preserve.
        let mut predictions = StaticPrediction::with_default(true);
        predictions.set(BranchId(0), true);
        predictions.set(BranchId(1), false);
        let scratch = crate::validate_replication(&m, &m, &map, &predictions);
        let mut cache = GateCache::new();
        let first = validate_replication_cached(&m, &m, &map, &predictions, &mut cache);
        assert_eq!(first, scratch);
        assert_eq!(cache.hits(), 0, "first round populates, never hits");
        let second = validate_replication_cached(&m, &m, &map, &predictions, &mut cache);
        assert_eq!(second, scratch);
        assert!(cache.hits() > 0, "unchanged round must replay from cache");
    }

    #[test]
    fn cached_history_replays_identical_diags() {
        let (m, prov, spec, predictions) = flip_flop_spec();
        let scratch = crate::check_history(&m, &prov, &spec, &predictions);
        let mut cache = GateCache::new();
        let first = check_history_cached(&m, &prov, &spec, &predictions, &mut cache);
        assert_eq!(first, scratch);
        assert_eq!(cache.hits(), 0);
        let second = check_history_cached(&m, &prov, &spec, &predictions, &mut cache);
        assert_eq!(second, scratch);
        assert!(cache.hits() > 0);
    }

    #[test]
    fn changed_predictions_miss_the_cache() {
        let (m, prov, spec, mut predictions) = flip_flop_spec();
        let mut cache = GateCache::new();
        let clean = check_history_cached(&m, &prov, &spec, &predictions, &mut cache);
        assert!(clean.is_empty(), "{clean:?}");
        // Flip a shipped prediction: the key must change, the re-proof
        // must run, and it must now find the violation.
        predictions.set(BranchId(0), false);
        let hits_before = cache.hits();
        let dirty = check_history_cached(&m, &prov, &spec, &predictions, &mut cache);
        assert_eq!(cache.hits(), hits_before, "changed key must not hit");
        assert_eq!(dirty, crate::check_history(&m, &prov, &spec, &predictions));
        assert!(
            !dirty.is_empty(),
            "flipped pin must be re-proved and caught"
        );
    }

    #[test]
    fn corrupted_multi_home_site_skips_cache_but_stays_exact() {
        let (m, _, spec, predictions) = flip_flop_spec();
        // A provenance claiming the two replicas belong to... the same
        // original site is fine; spreading a site across several functions
        // needs a second function. Corrupt instead by duplicating the
        // module into two functions sharing provenance for site 0.
        let mut m2 = m.clone();
        let mut f = m.function(brepl_ir::FuncId(0)).clone();
        f.name = "main_copy".to_string();
        m2.push_function(f);
        let prov2 = vec![BranchId(0), BranchId(0), BranchId(0), BranchId(0)];
        let scratch = crate::check_history(&m2, &prov2, &spec, &predictions);
        let mut cache = GateCache::new();
        let a = check_history_cached(&m2, &prov2, &spec, &predictions, &mut cache);
        let b = check_history_cached(&m2, &prov2, &spec, &predictions, &mut cache);
        assert_eq!(a, scratch);
        assert_eq!(b, scratch);
        assert_eq!(cache.hits(), 0, "multi-home sites must never be cached");
    }
}
