//! Per-site branch *direction* classification, and the profile-vs-proof
//! consistency gate built on top of it.
//!
//! [`classify_module`] runs the interval SCCP fixpoint
//! ([`crate::const_prop`]) and the loop analysis over every function and
//! assigns each conditional branch site a [`DirectionClass`]:
//!
//! * [`DirectionClass::ProvedMonostatic`] — abstract interpretation shows
//!   exactly one direction is feasible. The planner may pin the
//!   prediction and skip machine search entirely.
//! * [`DirectionClass::BoundedBias`] — a counted-loop trip-count proof
//!   pins the *exact* taken-rate as a rational `num/den` (for a loop
//!   proved to run `t` iterations per entry, the header test goes the
//!   stay direction exactly `t` of every `t + 1` executions, however many
//!   times the loop is entered).
//! * [`DirectionClass::ProfileDependent`] — the analysis claims nothing;
//!   the profile-driven machinery is the only source of truth.
//!
//! The class names deliberately do not collide with
//! [`brepl_cfg::BranchClass`], which classifies branches by *loop
//! structure* (intra-loop / loop-exit / non-loop), not by direction.
//!
//! # The consistency gate
//!
//! [`classification_diags`] cross-checks a profiling trace against the
//! proofs (`BR013`/`BR014`/`BR015`/`BR018`, plus `BR017` when the
//! fixpoint had to fail closed), and [`prediction_proof_diags`] checks
//! shipped static predictions against them (`BR016`). The trust base is
//! deliberately disjoint from both existing gates: the translation
//! validator trusts the [`crate::ReplicaMap`] witness and the history
//! checker trusts the machine tables, while this gate trusts only the
//! *original* module text and integer arithmetic. A corrupted trace that
//! survives replay and replication therefore still gets caught here.
//!
//! Soundness of every claim is fuzzed against the interpreter in
//! `tests/fuzz_pipeline.rs` (any `ProvedMonostatic` verdict must match a
//! unanimous simulated trace) and property-tested at the lattice level in
//! [`crate::interval`].

use brepl_cfg::{Cfg, DomTree, LoopForest, NaturalLoop};
use brepl_ir::{BlockId, BranchId, FuncId, Inst, Loc, Module, Term};
use brepl_predict::StaticPrediction;
use brepl_trace::TraceStats;

use crate::const_prop::{branch_feasibility, edge_env, edge_refinement, AbsVal, ConstProp, Env};
use crate::diag::{AnalysisDiag, DiagCode};
use brepl_ir::CmpOp;

/// What the static analysis proved about one branch site's direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectionClass {
    /// Exactly one direction is feasible: `true` means every execution
    /// takes the branch, `false` means none does.
    ProvedMonostatic(bool),
    /// The taken-rate is proved to be *exactly* `num / den` (a
    /// trip-count argument; see the module docs). `0 < den`, `num <= den`.
    BoundedBias {
        /// Numerator of the exact taken-rate.
        num: u64,
        /// Denominator of the exact taken-rate (`trips + 1`).
        den: u64,
    },
    /// Nothing proved; only the profile can decide.
    ProfileDependent,
}

impl DirectionClass {
    /// The pinned direction, for monostatic sites.
    pub fn proved_direction(&self) -> Option<bool> {
        match self {
            DirectionClass::ProvedMonostatic(d) => Some(*d),
            _ => None,
        }
    }

    /// The proved taken-rate band `(lo, hi)` as floats, when any bound
    /// is known (`(d, d)` for monostatic, `(r, r)` for exact bias).
    pub fn rate_band(&self) -> Option<(f64, f64)> {
        match self {
            DirectionClass::ProvedMonostatic(d) => {
                let r = if *d { 1.0 } else { 0.0 };
                Some((r, r))
            }
            DirectionClass::BoundedBias { num, den } => {
                let r = *num as f64 / *den as f64;
                Some((r, r))
            }
            DirectionClass::ProfileDependent => None,
        }
    }
}

impl std::fmt::Display for DirectionClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectionClass::ProvedMonostatic(true) => write!(f, "proved-taken"),
            DirectionClass::ProvedMonostatic(false) => write!(f, "proved-not-taken"),
            DirectionClass::BoundedBias { num, den } => {
                write!(f, "bias-exact {num}/{den}")
            }
            DirectionClass::ProfileDependent => write!(f, "profile-dependent"),
        }
    }
}

/// One classified branch site.
#[derive(Clone, Debug)]
pub struct SiteClass {
    /// The branch site id.
    pub site: BranchId,
    /// The function holding the branch.
    pub func: FuncId,
    /// The block whose terminator is the branch.
    pub block: BlockId,
    /// The direction verdict.
    pub class: DirectionClass,
    /// Whether the site can execute at all (function reachable through
    /// the call graph *and* block executable in the SCCP fixpoint).
    /// `false` is a *must*-unreachable proof: any trace event here is
    /// corruption (`BR015`).
    pub reachable: bool,
    /// The branch condition is a compile-time integer constant (`BR018`).
    pub constant_condition: Option<i64>,
}

/// Whole-module classification.
#[derive(Clone, Debug)]
pub struct Classification {
    /// One entry per conditional branch site, in function/block order.
    pub sites: Vec<SiteClass>,
    /// Functions whose fixpoint blew its budget: their sites are forced
    /// to [`DirectionClass::ProfileDependent`] + reachable (fail closed)
    /// and `BR017` reports each of them.
    pub unconverged_funcs: Vec<FuncId>,
}

impl Classification {
    /// Looks up a site's verdict.
    pub fn by_site(&self, site: BranchId) -> Option<&SiteClass> {
        self.sites.iter().find(|s| s.site == site)
    }

    /// Counts `(proved, bias, dependent)` over all sites.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for s in &self.sites {
            match s.class {
                DirectionClass::ProvedMonostatic(_) => c.0 += 1,
                DirectionClass::BoundedBias { .. } => c.1 += 1,
                DirectionClass::ProfileDependent => c.2 += 1,
            }
        }
        c
    }

    /// All `(site, direction)` pairs proved monostatic — the input shape
    /// the proof-guided predictor and the planner fast-path consume.
    pub fn proved_sites(&self) -> Vec<(BranchId, bool)> {
        self.sites
            .iter()
            .filter_map(|s| s.class.proved_direction().map(|d| (s.site, d)))
            .collect()
    }

    /// True if every function's fixpoint converged.
    pub fn converged(&self) -> bool {
        self.unconverged_funcs.is_empty()
    }
}

/// Classifies every conditional branch site of `module`. Pure function
/// of the module text; never consults a profile.
pub fn classify_module(module: &Module) -> Classification {
    let cp = ConstProp::analyze(module);
    let mut sites = Vec::new();
    let mut unconverged_funcs = Vec::new();

    for (fid, func) in module.iter_functions() {
        let values = &cp.funcs[fid.index()];
        if !values.stats.converged {
            unconverged_funcs.push(fid);
        }
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);

        for (bid, block) in func.iter_blocks() {
            let Term::Br { site, .. } = block.term else {
                continue;
            };
            let reachable = cp.block_live(fid, bid);
            if !values.stats.converged {
                // Fail closed: no verdicts from a function that blew its
                // budget, and no unreachability claims either.
                sites.push(SiteClass {
                    site,
                    func: fid,
                    block: bid,
                    class: DirectionClass::ProfileDependent,
                    reachable: true,
                    constant_condition: None,
                });
                continue;
            }

            let cond_val = values.branch_condition_value(func, bid);
            let constant_condition = match &cond_val {
                Some(AbsVal::Int(iv)) => iv.as_constant(),
                _ => None,
            };
            let class = if !reachable {
                // A dead site has no direction to classify; claiming one
                // would let the fast-path pin predictions for code the
                // profile can never confirm.
                DirectionClass::ProfileDependent
            } else {
                match &cond_val {
                    Some(v) => match branch_feasibility(v) {
                        (true, false) => DirectionClass::ProvedMonostatic(true),
                        (false, true) => DirectionClass::ProvedMonostatic(false),
                        _ => trip_count_bias(func, &cfg, &dom, &forest, values, bid)
                            .unwrap_or(DirectionClass::ProfileDependent),
                    },
                    None => DirectionClass::ProfileDependent,
                }
            };
            sites.push(SiteClass {
                site,
                func: fid,
                block: bid,
                class,
                reachable,
                constant_condition,
            });
        }
    }

    Classification {
        sites,
        unconverged_funcs,
    }
}

/// Tries to prove an exact per-entry trip count for the loop whose
/// header test is the branch at `bid`, yielding the exact taken-rate.
///
/// The preconditions are deliberately strict — each one discharges an
/// assumption of the counting argument:
///
/// 1. `bid` is the header of its innermost loop, and the branch is the
///    loop's *only* exit (one successor stays in, one leaves, no other
///    exit edges) — so the header test runs exactly `trips + 1` times
///    per entry.
/// 2. The condition is `i op k` for an in-block compare against an
///    integer immediate (via the same [`edge_refinement`] scan the SCCP
///    edges use), with the stay-predicate a half-range test
///    (`<`, `<=`, `>`, `>=`).
/// 3. `i` has exactly one definition anywhere in the loop: `i += s` /
///    `i -= s` with an immediate step, in a block that is not the header,
///    belongs to no deeper loop, and dominates every latch — so it runs
///    exactly once per iteration.
/// 4. On every loop entry `i` holds the same proved constant `c` (join
///    of the refined entry-edge environments), and the iteration
///    sequence never leaves `i64` (checked in `i128`) — so wrap-around
///    cannot bend the count.
///
/// Under 1–4 the header test goes the stay direction exactly
/// `trips(c, k, s, op)` times per entry, independent of the entry count,
/// which is what lets [`classification_diags`] check the profiled rate
/// *exactly* rather than within a tolerance.
fn trip_count_bias(
    func: &brepl_ir::Function,
    cfg: &Cfg,
    dom: &DomTree,
    forest: &LoopForest,
    values: &crate::const_prop::FuncValues,
    bid: BlockId,
) -> Option<DirectionClass> {
    let block = func.block(bid);
    let Term::Br {
        cond, then_, else_, ..
    } = &block.term
    else {
        return None;
    };

    // Precondition 1: header of its innermost loop, single-exit there.
    let lid = forest.innermost(bid)?;
    let lp: &NaturalLoop = forest.get(lid);
    if lp.header != bid {
        return None;
    }
    let then_in = lp.contains(*then_);
    let else_in = lp.contains(*else_);
    let stay_taken = match (then_in, else_in) {
        (true, false) => true,
        (false, true) => false,
        _ => return None,
    };
    if !lp.exit_edges.iter().all(|&(from, _)| from == bid) {
        return None;
    }

    // Precondition 2: condition shape `i op k`.
    let cond_reg = cond.reg()?;
    let r = edge_refinement(block, cond_reg)?;
    let i_reg = r.reg;
    // The predicate that holds when control *stays* in the loop.
    let stay_op = if stay_taken { r.op } else { r.op.negated() };

    // Precondition 3: single induction step, once per iteration.
    let mut step: Option<(BlockId, i64)> = None;
    for &lb in &lp.blocks {
        for inst in &func.block(lb).insts {
            if inst.def() != Some(i_reg) {
                continue;
            }
            if step.is_some() {
                return None; // second def
            }
            let Inst::Bin { op, lhs, rhs, .. } = inst else {
                return None;
            };
            let imm = |o: &brepl_ir::Operand| match o {
                brepl_ir::Operand::Imm(brepl_ir::Value::Int(k)) => Some(*k),
                _ => None,
            };
            let s = match (op, lhs, rhs) {
                (brepl_ir::BinOp::Add, brepl_ir::Operand::Reg(a), o)
                | (brepl_ir::BinOp::Add, o, brepl_ir::Operand::Reg(a))
                    if *a == i_reg =>
                {
                    imm(o)?
                }
                (brepl_ir::BinOp::Sub, brepl_ir::Operand::Reg(a), o) if *a == i_reg => {
                    imm(o)?.checked_neg()?
                }
                _ => return None,
            };
            step = Some((lb, s));
        }
    }
    let (step_block, step) = step?;
    if step == 0 || step_block == bid {
        return None;
    }
    if forest.innermost(step_block) != Some(lid) {
        return None;
    }
    if !lp
        .back_edges
        .iter()
        .all(|&(tail, _)| dom.dominates(step_block, tail))
    {
        return None;
    }

    // Precondition 4: constant entry value, identical on every entry.
    let mut entry: Option<AbsVal> = None;
    for &p in cfg.preds(bid) {
        if lp.contains(p) {
            continue; // latch edge, not an entry
        }
        if !values.executable[p.index()] {
            continue;
        }
        let pin: Env = values.entry_env(p)?.to_vec();
        let Some(contrib) = edge_env(func, p, bid, &pin) else {
            continue; // abstractly infeasible entry edge
        };
        let v = contrib.get(i_reg.index()).cloned().unwrap_or(AbsVal::Any);
        entry = Some(match entry {
            None => v,
            Some(prev) if prev == v => prev,
            Some(_) => return None,
        });
    }
    let c = match entry? {
        AbsVal::Int(iv) => iv.as_constant()?,
        _ => return None,
    };

    let trips = count_trips(c, r.k, step, stay_op)?;

    // Guard against wrap-around: the exit value c + trips*step must fit
    // i64 (every intermediate value lies between c and it).
    let last = c as i128 + trips as i128 * step as i128;
    if last < i64::MIN as i128 || last > i64::MAX as i128 {
        return None;
    }

    let den = trips.checked_add(1)?;
    let num = if stay_taken { trips } else { 1 };
    Some(DirectionClass::BoundedBias { num, den })
}

/// How many consecutive values of the sequence `c, c+s, c+2s, ...`
/// satisfy `i op k` before the first failure. `None` when the predicate
/// shape and step direction cannot be counted (wrong sign, `==`/`!=`,
/// or a count that does not fit `u64`).
fn count_trips(c: i64, k: i64, s: i64, op: CmpOp) -> Option<u64> {
    let (c, k, s) = (c as i128, k as i128, s as i128);
    let t = match op {
        CmpOp::Lt if s > 0 => {
            if c >= k {
                0
            } else {
                (k - c + s - 1) / s
            }
        }
        CmpOp::Le if s > 0 => {
            if c > k {
                0
            } else {
                (k - c) / s + 1
            }
        }
        CmpOp::Gt if s < 0 => {
            if c <= k {
                0
            } else {
                (c - k + (-s) - 1) / (-s)
            }
        }
        CmpOp::Ge if s < 0 => {
            if c < k {
                0
            } else {
                (c - k) / (-s) + 1
            }
        }
        _ => return None,
    };
    u64::try_from(t).ok()
}

/// Cross-checks a profiling trace against the classification. Every
/// returned diagnostic is attributed to its branch site so the
/// pipeline's per-site quarantine (or a hard gate) can act on it:
///
/// * `BR013` — events in the *impossible* direction of a proved
///   monostatic site;
/// * `BR014` — a taken-count violating an exact bias proof (checked in
///   exact integer arithmetic: `taken * den == total * num`);
/// * `BR015` — any event at a site proved unreachable;
/// * `BR017` — one per function whose fixpoint failed to converge;
/// * `BR018` — a (warning) note per reachable constant-condition branch.
pub fn classification_diags(
    module: &Module,
    cls: &Classification,
    stats: &TraceStats,
) -> Vec<AnalysisDiag> {
    let mut diags = Vec::new();
    for &fid in &cls.unconverged_funcs {
        diags.push(AnalysisDiag::new(
            DiagCode::ClassifyFixpointFailure,
            Loc::block(fid, module.function(fid).entry),
            "classification fixpoint blew its budget; verdicts for this function withheld",
        ));
    }
    for s in &cls.sites {
        let counts = stats.site(s.site);
        let loc = Loc::term(s.func, s.block);
        if !s.reachable {
            if counts.total() > 0 {
                diags.push(
                    AnalysisDiag::new(
                        DiagCode::ProfileEventOnUnreachable,
                        loc,
                        format!(
                            "trace records {} event(s) at a branch proved unreachable",
                            counts.total()
                        ),
                    )
                    .with_site(s.site),
                );
            }
            continue;
        }
        match s.class {
            DirectionClass::ProvedMonostatic(dir) => {
                let impossible = if dir { counts.not_taken } else { counts.taken };
                if impossible > 0 {
                    diags.push(
                        AnalysisDiag::new(
                            DiagCode::ProfileProofConflict,
                            loc,
                            format!(
                                "trace records {impossible} {} event(s) on a branch proved {}",
                                if dir { "not-taken" } else { "taken" },
                                if dir { "always-taken" } else { "never-taken" },
                            ),
                        )
                        .with_site(s.site),
                    );
                }
            }
            DirectionClass::BoundedBias { num, den } => {
                // Exact rational check; the proof predicts the taken
                // count exactly, for any number of loop entries.
                let total = counts.total() as u128;
                if counts.taken as u128 * den as u128 != total * num as u128 {
                    diags.push(
                        AnalysisDiag::new(
                            DiagCode::ProfileBiasConflict,
                            loc,
                            format!(
                                "trace records {}/{} taken but the trip-count proof pins the rate at exactly {num}/{den}",
                                counts.taken,
                                counts.total(),
                            ),
                        )
                        .with_site(s.site),
                    );
                }
            }
            DirectionClass::ProfileDependent => {}
        }
        if let Some(k) = s.constant_condition {
            diags.push(
                AnalysisDiag::new(
                    DiagCode::ConstantConditionBranch,
                    loc,
                    format!("branch condition is the compile-time constant {k}"),
                )
                .with_site(s.site),
            );
        }
    }
    diags
}

/// Checks shipped static predictions against the proofs (`BR016`): a
/// prediction that pins the direction opposite to a proved one can only
/// lose. `sites` restricts the check to sites the caller actually ships
/// predictions for (pass the planner's enabled set); sites proved
/// monostatic but predicted by default are not worth a diagnostic.
pub fn prediction_proof_diags(
    module: &Module,
    cls: &Classification,
    predictions: &StaticPrediction,
    sites: &[BranchId],
) -> Vec<AnalysisDiag> {
    let mut diags = Vec::new();
    for &site in sites {
        let Some(s) = cls.by_site(site) else { continue };
        let Some(dir) = s.class.proved_direction() else {
            continue;
        };
        if !s.reachable {
            continue;
        }
        if predictions.get(site) != dir {
            let loc = module
                .locate_branch(site)
                .map(|(f, b)| Loc::term(f, b))
                .unwrap_or(Loc::term(s.func, s.block));
            diags.push(
                AnalysisDiag::new(
                    DiagCode::PredictionProofConflict,
                    loc,
                    format!(
                        "shipped prediction says {} but the branch is proved {}",
                        if dir { "not-taken" } else { "taken" },
                        if dir { "always-taken" } else { "never-taken" },
                    ),
                )
                .with_site(site),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};
    use brepl_trace::{Trace, TraceEvent};

    /// `main` with one counted loop `for i in 0..trip` whose body has an
    /// inner data-dependent branch, plus a constant-false branch behind
    /// which sits a dead random branch.
    fn module_with_everything(trip: i64) -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let head = b.new_block();
        let body = b.new_block();
        let inner_t = b.new_block();
        let latch = b.new_block();
        let dead = b.new_block();
        let dead2 = b.new_block();
        let exit = b.new_block();

        let i = b.reg();
        b.const_int(i, 0);
        let never = b.reg();
        b.const_int(never, 0);
        b.jmp(head);

        b.switch_to(head);
        let c = b.lt(Operand::Reg(i), Operand::imm(trip));
        b.br(c, body, exit); // site 0: bias trip/(trip+1)

        b.switch_to(body);
        let r = b.rand(Operand::imm(2));
        b.br(r, inner_t, latch); // site 1: profile-dependent

        b.switch_to(inner_t);
        b.jmp(latch);

        b.switch_to(latch);
        b.add(i, Operand::Reg(i), Operand::imm(1));
        b.jmp(head);

        b.switch_to(exit);
        b.br(never, dead, dead2); // site 3 (block order): proved not-taken

        b.switch_to(dead);
        let dr = b.rand(Operand::imm(2));
        b.br(dr, dead2, dead2); // site 2 (block order): unreachable

        b.switch_to(dead2);
        b.ret(None);

        let mut m = Module::new();
        m.push_function(b.finish());
        m.renumber_branches();
        m
    }

    fn site(n: u32) -> BranchId {
        BranchId(n)
    }

    #[test]
    fn classifies_the_four_shapes() {
        let m = module_with_everything(100);
        let cls = classify_module(&m);
        assert!(cls.converged());
        assert_eq!(cls.sites.len(), 4);

        let head = cls.by_site(site(0)).unwrap();
        assert_eq!(
            head.class,
            DirectionClass::BoundedBias { num: 100, den: 101 }
        );
        assert!(head.reachable);

        let inner = cls.by_site(site(1)).unwrap();
        assert_eq!(inner.class, DirectionClass::ProfileDependent);

        let never = cls.by_site(site(3)).unwrap();
        assert_eq!(never.class, DirectionClass::ProvedMonostatic(false));
        assert_eq!(never.constant_condition, Some(0));

        let dead = cls.by_site(site(2)).unwrap();
        assert!(!dead.reachable);
        assert_eq!(dead.class, DirectionClass::ProfileDependent);

        assert_eq!(cls.counts(), (1, 1, 2));
        assert_eq!(cls.proved_sites(), vec![(site(3), false)]);
    }

    #[test]
    fn clean_trace_passes_the_gate() {
        let m = module_with_everything(3);
        let cls = classify_module(&m);
        // One loop entry: head taken 3/4, inner arbitrary, never 0/1.
        let mut t = Trace::new();
        for n in 0..4u32 {
            t.push(TraceEvent {
                site: site(0),
                taken: n < 3,
            });
            if n < 3 {
                t.push(TraceEvent {
                    site: site(1),
                    taken: n % 2 == 0,
                });
            }
        }
        t.push(TraceEvent {
            site: site(3),
            taken: false,
        });
        let stats = TraceStats::from_trace(&t);
        let diags = classification_diags(&m, &cls, &stats);
        assert!(
            diags
                .iter()
                .all(|d| d.code == DiagCode::ConstantConditionBranch),
            "unexpected diags: {diags:?}"
        );
    }

    #[test]
    fn forged_events_fire_exactly_the_right_codes() {
        let m = module_with_everything(3);
        let cls = classify_module(&m);

        // A taken event on the proved-never-taken site -> BR013.
        let mut t = Trace::new();
        t.push(TraceEvent {
            site: site(3),
            taken: true,
        });
        let diags = classification_diags(&m, &cls, &TraceStats::from_trace(&t));
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::ProfileProofConflict && d.site == Some(site(3))));

        // A wrong taken-count on the bias-proved header -> BR014.
        let mut t = Trace::new();
        for _ in 0..4 {
            t.push(TraceEvent {
                site: site(0),
                taken: true,
            });
        }
        let diags = classification_diags(&m, &cls, &TraceStats::from_trace(&t));
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::ProfileBiasConflict && d.site == Some(site(0))));

        // Any event at the dead site -> BR015.
        let mut t = Trace::new();
        t.push(TraceEvent {
            site: site(2),
            taken: false,
        });
        let diags = classification_diags(&m, &cls, &TraceStats::from_trace(&t));
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::ProfileEventOnUnreachable && d.site == Some(site(2))));
    }

    #[test]
    fn prediction_gate_flags_only_contradicted_shipped_sites() {
        let m = module_with_everything(3);
        let cls = classify_module(&m);
        let mut pred = StaticPrediction::with_default(true);
        // Site 3 is proved never-taken; predicting taken is a conflict —
        // but only when site 3 is actually shipped.
        let diags = prediction_proof_diags(&m, &cls, &pred, &[site(0), site(1)]);
        assert!(diags.is_empty());
        let diags = prediction_proof_diags(&m, &cls, &pred, &[site(3)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::PredictionProofConflict);
        assert_eq!(diags[0].site, Some(site(3)));
        // Agreeing prediction: clean.
        pred.set(site(3), false);
        assert!(prediction_proof_diags(&m, &cls, &pred, &[site(3)]).is_empty());
    }

    #[test]
    fn trip_counts_cover_all_four_predicates() {
        // i < k, +s
        assert_eq!(count_trips(0, 100, 1, CmpOp::Lt), Some(100));
        assert_eq!(count_trips(0, 100, 3, CmpOp::Lt), Some(34));
        assert_eq!(count_trips(100, 100, 1, CmpOp::Lt), Some(0));
        // i <= k, +s
        assert_eq!(count_trips(0, 100, 1, CmpOp::Le), Some(101));
        // i > k, -s
        assert_eq!(count_trips(100, 0, -1, CmpOp::Gt), Some(100));
        // i >= k, -s
        assert_eq!(count_trips(100, 0, -2, CmpOp::Ge), Some(51));
        // Wrong step direction or uncountable op: no claim.
        assert_eq!(count_trips(0, 100, -1, CmpOp::Lt), None);
        assert_eq!(count_trips(0, 100, 1, CmpOp::Ne), None);
        assert_eq!(count_trips(0, 100, 1, CmpOp::Eq), None);
    }

    #[test]
    fn downward_loop_gets_an_exact_band() {
        // for (i = n; i > 0; i -= 1), header `i > 0` with const n = 7.
        let mut b = FunctionBuilder::new("main", 0);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.reg();
        b.const_int(i, 7);
        b.jmp(head);
        b.switch_to(head);
        let c = b.gt(Operand::Reg(i), Operand::imm(0));
        b.br(c, body, exit);
        b.switch_to(body);
        b.sub(i, Operand::Reg(i), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        m.renumber_branches();

        let cls = classify_module(&m);
        assert_eq!(
            cls.by_site(BranchId(0)).unwrap().class,
            DirectionClass::BoundedBias { num: 7, den: 8 }
        );
    }

    #[test]
    fn non_constant_entry_or_double_step_claims_nothing() {
        // Entry value comes from Rand: no proof.
        let mut b = FunctionBuilder::new("main", 0);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.reg();
        let r = b.rand(Operand::imm(5));
        b.copy(i, Operand::Reg(r));
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(Operand::Reg(i), Operand::imm(100));
        b.br(c, body, exit);
        b.switch_to(body);
        b.add(i, Operand::Reg(i), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        m.renumber_branches();

        let cls = classify_module(&m);
        assert_eq!(
            cls.by_site(BranchId(0)).unwrap().class,
            DirectionClass::ProfileDependent
        );
    }

    #[test]
    fn unconverged_function_fails_closed_with_br017() {
        // Nested self-feeding loops that keep the worklist busy past the
        // budget are hard to build small; instead check the fail-closed
        // path directly through a Classification with a forced entry.
        let m = module_with_everything(3);
        let mut cls = classify_module(&m);
        cls.unconverged_funcs.push(FuncId(0));
        for s in &mut cls.sites {
            s.class = DirectionClass::ProfileDependent;
            s.reachable = true;
            s.constant_condition = None;
        }
        let stats = TraceStats::from_trace(&Trace::new());
        let diags = classification_diags(&m, &cls, &stats);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::ClassifyFixpointFailure);
    }
}
