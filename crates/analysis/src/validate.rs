//! The static translation validator.
//!
//! Given the original module, the replicated module, and the
//! [`ReplicaMap`] witness emitted by the replicator, this module checks a
//! *simulation relation*: every execution of the replicated program is an
//! execution of the original with some blocks renamed. Concretely, for
//! every reachable replica block with origin chain `o1..ok`:
//!
//! 1. **Instruction streams** — the replica's instructions equal the
//!    concatenation of `o1..ok`'s instructions, and its terminator matches
//!    `ok`'s (same kind, same condition/return operand); block-id operands
//!    live only in terminators, so this is exactly "equal modulo block-ID
//!    renaming" (`BR005`).
//! 2. **Chain links** — consecutive chain blocks were merged along real
//!    control flow: `oi` ends in an unconditional jump that reaches
//!    `oi+1` through empty blocks (`BR004`).
//! 3. **Edge projection** — each replica CFG edge, slot by slot, projects
//!    to the corresponding original edge out of `ok`, allowing the
//!    original target to be reached through a chain of empty
//!    jump-only blocks (the jump threading the simplifier performs)
//!    (`BR004`); the replica entry must project onto the original entry
//!    the same way.
//! 4. **Predictions** — when the witness says a replica block encodes a
//!    machine state predicting direction `d`, the shipped static
//!    prediction for that block's branch site must be `d` (`BR006`).
//! 5. **Live-ins** — every register live into the replica block is live
//!    into `o1`: replication only restricts paths, so a *new* live-in
//!    means a renamed or reordered register read (`BR007`).
//!
//! Unreachable replica blocks are reported as `BR001` warnings and
//! excluded from the relation; a malformed witness is `BR008`.

use brepl_cfg::Cfg;
use brepl_ir::{BlockId, Function, Loc, Module, Reg, Term};
use brepl_predict::StaticPrediction;

use crate::diag::{AnalysisDiag, DiagCode};
use crate::liveness::liveness;
use crate::replica_map::{ReplicaFuncMap, ReplicaMap};

/// Statically validates `replicated` against `original` under the witness
/// `map` and the shipped `predictions`. Returns every finding; the
/// transformation is proven correct (with respect to the checked relation)
/// when no error-severity diagnostic is present.
pub fn validate_replication(
    original: &Module,
    replicated: &Module,
    map: &ReplicaMap,
    predictions: &StaticPrediction,
) -> Vec<AnalysisDiag> {
    let mut diags = Vec::new();

    if map.functions.len() != replicated.function_count()
        || original.function_count() != replicated.function_count()
    {
        diags.push(AnalysisDiag::new(
            DiagCode::InvalidReplicaMap,
            Loc::function(brepl_ir::FuncId(0)),
            format!(
                "shape mismatch: {} original / {} replicated functions, {} map entries",
                original.function_count(),
                replicated.function_count(),
                map.functions.len()
            ),
        ));
        return diags;
    }

    for (fid, rfunc) in replicated.iter_functions() {
        let ofunc = original.function(fid);
        let fmap = &map.functions[fid.index()];
        diags.extend(validate_one_function(fid, ofunc, rfunc, fmap, predictions));
    }
    diags
}

/// The per-function slice of [`validate_replication`]: shape checks plus
/// the full simulation-relation validation of one function. The module
/// loop above and the pipeline's incremental gate cache both call this —
/// a function whose inputs are unchanged since the previous round yields
/// the same diagnostics, so the cache replays them.
pub(crate) fn validate_one_function(
    fid: brepl_ir::FuncId,
    ofunc: &Function,
    rfunc: &Function,
    fmap: &ReplicaFuncMap,
    predictions: &StaticPrediction,
) -> Vec<AnalysisDiag> {
    let mut diags = Vec::new();
    if let Err(msg) = check_shape(ofunc, rfunc, fmap) {
        diags.push(AnalysisDiag::new(
            DiagCode::InvalidReplicaMap,
            Loc::function(fid),
            msg,
        ));
        return diags;
    }
    validate_function(fid, ofunc, rfunc, fmap, predictions, &mut diags);
    diags
}

/// Structural witness checks; any failure makes the deeper checks
/// meaningless for this function.
fn check_shape(ofunc: &Function, rfunc: &Function, fmap: &ReplicaFuncMap) -> Result<(), String> {
    if ofunc.name != rfunc.name {
        return Err(format!(
            "function name changed: {:?} -> {:?}",
            ofunc.name, rfunc.name
        ));
    }
    if ofunc.n_params != rfunc.n_params {
        return Err(format!(
            "parameter count changed: {} -> {}",
            ofunc.n_params, rfunc.n_params
        ));
    }
    if fmap.origins.len() != rfunc.blocks.len() {
        return Err(format!(
            "map covers {} blocks but the function has {}",
            fmap.origins.len(),
            rfunc.blocks.len()
        ));
    }
    if fmap.machine_predictions.len() != rfunc.blocks.len() {
        return Err(format!(
            "map carries {} prediction slots but the function has {} blocks",
            fmap.machine_predictions.len(),
            rfunc.blocks.len()
        ));
    }
    for (i, chain) in fmap.origins.iter().enumerate() {
        if chain.is_empty() {
            return Err(format!("block b{i} has an empty origin chain"));
        }
        if let Some(&bad) = chain.iter().find(|o| o.index() >= ofunc.blocks.len()) {
            return Err(format!(
                "block b{i}'s origin chain names {bad}, outside the original function"
            ));
        }
    }
    Ok(())
}

/// The blocks reachable from `start` in `func` by falling through empty
/// jump-only blocks, `start` included — the set of legal projection targets
/// for an edge whose original target is `start`, given that the simplifier
/// threads jumps past empty blocks.
fn thread_chain(func: &Function, start: BlockId) -> Vec<BlockId> {
    let mut chain = vec![start];
    let mut cur = start;
    loop {
        let block = func.block(cur);
        let Term::Jmp { target } = block.term else {
            break;
        };
        if !block.insts.is_empty() || chain.contains(&target) {
            break;
        }
        chain.push(target);
        cur = target;
    }
    chain
}

/// Terminator compatibility: same kind, same non-successor operands.
fn terms_compatible(rterm: &Term, oterm: &Term) -> Result<(), String> {
    match (rterm, oterm) {
        (Term::Jmp { .. }, Term::Jmp { .. }) => Ok(()),
        (Term::Br { cond: rc, .. }, Term::Br { cond: oc, .. }) => {
            if rc == oc {
                Ok(())
            } else {
                Err(format!("branch condition changed: {oc} -> {rc}"))
            }
        }
        (Term::Ret { value: rv }, Term::Ret { value: ov }) => {
            if rv == ov {
                Ok(())
            } else {
                Err("return operand changed".to_string())
            }
        }
        _ => Err("terminator kind changed".to_string()),
    }
}

fn validate_function(
    fid: brepl_ir::FuncId,
    ofunc: &Function,
    rfunc: &Function,
    fmap: &ReplicaFuncMap,
    predictions: &StaticPrediction,
    diags: &mut Vec<AnalysisDiag>,
) {
    let rcfg = Cfg::new(rfunc);
    let ocfg = Cfg::new(ofunc);
    let reachable = rcfg.reachable();
    let rlive = liveness(rfunc, &rcfg);
    let olive = liveness(ofunc, &ocfg);

    // Entry projection: the replica entry must be (a threaded form of) the
    // original entry.
    let entry_origin = fmap.first_origin(rfunc.entry).expect("shape-checked above");
    if !thread_chain(ofunc, ofunc.entry).contains(&entry_origin) {
        diags.push(AnalysisDiag::new(
            DiagCode::OrphanReplicaEdge,
            Loc::block(fid, rfunc.entry),
            format!(
                "entry block originates from {entry_origin}, which the original entry {} does not reach",
                ofunc.entry
            ),
        ));
    }

    for (bid, rblock) in rfunc.iter_blocks() {
        if !reachable[bid.index()] {
            diags.push(AnalysisDiag::new(
                DiagCode::UnreachableReplica,
                Loc::block(fid, bid),
                format!("replica block {bid} is unreachable and should have been cleaned up"),
            ));
            continue;
        }
        let chain = &fmap.origins[bid.index()];

        // The original branch site this replica block descends from — the
        // per-site quarantine target when a check below fires. `None` when
        // the origin chain ends in a jump or return.
        let origin_site = chain
            .last()
            .and_then(|&o| ofunc.block(o).term.branch_site());
        let tag = |d: AnalysisDiag| match origin_site {
            Some(s) => d.with_site(s),
            None => d,
        };

        // 1. Instruction stream: replica insts == concatenation of the
        // chain's insts.
        let expected: Vec<_> = chain
            .iter()
            .flat_map(|&o| ofunc.block(o).insts.iter().cloned())
            .collect();
        if rblock.insts != expected {
            diags.push(tag(AnalysisDiag::new(
                DiagCode::InstStreamMismatch,
                Loc::block(fid, bid),
                format!(
                    "instruction stream ({} insts) differs from origin chain {:?} ({} insts)",
                    rblock.insts.len(),
                    chain,
                    expected.len()
                ),
            )));
        }

        // 2. Chain links: each merge step followed an unconditional jump.
        for w in chain.windows(2) {
            let (a, b) = (w[0], w[1]);
            match ofunc.block(a).term {
                Term::Jmp { target } if thread_chain(ofunc, target).contains(&b) => {}
                _ => diags.push(tag(AnalysisDiag::new(
                    DiagCode::OrphanReplicaEdge,
                    Loc::block(fid, bid),
                    format!("origin chain link {a} -> {b} is not an original jump"),
                ))),
            }
        }

        // Terminator compatibility with the chain's last block.
        let last = *chain.last().expect("chains are non-empty");
        let oterm = &ofunc.block(last).term;
        if let Err(msg) = terms_compatible(&rblock.term, oterm) {
            diags.push(tag(AnalysisDiag::new(
                DiagCode::InstStreamMismatch,
                Loc::term(fid, bid),
                format!("terminator differs from origin {last}: {msg}"),
            )));
        } else {
            // 3. Edge projection, slot by slot (taken then not-taken).
            let rsuccs: Vec<_> = rblock.term.successors().collect();
            let osuccs: Vec<_> = oterm.successors().collect();
            for (slot, (&rsucc, &osucc)) in rsuccs.iter().zip(&osuccs).enumerate() {
                let Some(rsucc_origin) = fmap.first_origin(rsucc) else {
                    continue; // out-of-range successor: the IR verifier's problem
                };
                if !thread_chain(ofunc, osucc).contains(&rsucc_origin) {
                    diags.push(tag(AnalysisDiag::new(
                        DiagCode::OrphanReplicaEdge,
                        Loc::term(fid, bid),
                        format!(
                            "edge {bid} -> {rsucc} (slot {slot}) projects to {last} -> {rsucc_origin}, not an original edge (expected a threaded form of {osucc})"
                        ),
                    )));
                }
            }
        }

        // 4. Prediction consistency with the encoded machine state.
        if let Some(dir) = fmap.machine_predictions[bid.index()] {
            match rblock.term.branch_site() {
                None => diags.push(tag(AnalysisDiag::new(
                    DiagCode::InvalidReplicaMap,
                    Loc::term(fid, bid),
                    format!(
                        "witness pins prediction {dir} on {bid}, which has no conditional branch"
                    ),
                ))),
                Some(site) => {
                    let shipped = predictions.get(site);
                    if shipped != dir {
                        diags.push(tag(AnalysisDiag::new(
                            DiagCode::PredictionMismatch,
                            Loc::term(fid, bid),
                            format!(
                                "site {site} ships prediction {shipped} but the encoded machine state predicts {dir}"
                            ),
                        )));
                    }
                }
            }
        }

        // 5. Live-in containment: a fresh live-in register means the
        // replica reads something its origin does not.
        let first = chain[0];
        let origin_live = olive.live_in(first);
        let fresh: Vec<Reg> = rlive
            .live_in(bid)
            .iter()
            .filter(|&r| !origin_live.contains(r))
            .map(|r| Reg(r as u32))
            .collect();
        if !fresh.is_empty() {
            let names: Vec<String> = fresh.iter().map(|r| r.to_string()).collect();
            diags.push(tag(AnalysisDiag::new(
                DiagCode::LiveInMismatch,
                Loc::block(fid, bid),
                format!(
                    "registers [{}] are live into {bid} but not into its origin {first}",
                    names.join(", ")
                ),
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};

    /// A loop whose body branches on the parity of the counter.
    fn small_module() -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let i = b.reg();
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.const_int(i, 0);
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(i.into(), Operand::imm(10));
        b.br(c, body, exit);
        b.switch_to(body);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.ret(Some(i.into()));
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn identity_validates_clean() {
        let m = small_module();
        let map = ReplicaMap::identity(&m);
        let p = StaticPrediction::with_default(true);
        assert!(validate_replication(&m, &m, &map, &p).is_empty());
    }

    #[test]
    fn faithful_loop_replication_validates_clean() {
        // Replicate the whole loop into two alternating states — the shape
        // the real replicator produces: head -> body -> head' -> body' ->
        // head.
        let m = small_module();
        let mut r = m.clone();
        let f = r.function_mut(brepl_ir::FuncId(0));
        let head = BlockId(1);
        let body = BlockId(2);
        let head2 = BlockId::from_index(f.blocks.len());
        let body2 = BlockId::from_index(f.blocks.len() + 1);
        let h = f.blocks[head.index()].clone();
        f.blocks.push(h);
        let b2 = f.blocks[body.index()].clone();
        f.blocks.push(b2);
        f.blocks[body.index()].term = Term::Jmp { target: head2 };
        if let Term::Br { then_, .. } = &mut f.blocks[head2.index()].term {
            *then_ = body2;
        }
        f.blocks[body2.index()].term = Term::Jmp { target: head };
        r.renumber_branches();
        let mut map = ReplicaMap::identity(&m);
        map.functions[0].origins.push(vec![head]);
        map.functions[0].origins.push(vec![body]);
        map.functions[0].machine_predictions.extend([None, None]);
        let p = StaticPrediction::with_default(true);
        let diags = validate_replication(&m, &r, &map, &p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dropped_instruction_is_br005() {
        let m = small_module();
        let mut r = m.clone();
        r.function_mut(brepl_ir::FuncId(0)).blocks[2].insts.clear();
        let map = ReplicaMap::identity(&m);
        let p = StaticPrediction::with_default(true);
        let diags = validate_replication(&m, &r, &map, &p);
        assert!(diags.iter().any(|d| d.code == DiagCode::InstStreamMismatch));
    }

    #[test]
    fn retargeted_edge_is_br004() {
        let m = small_module();
        let mut r = m.clone();
        // Point the exit leg of the loop branch back at the body: projects
        // to head -> body on the wrong slot.
        if let Term::Br { else_, .. } = &mut r.function_mut(brepl_ir::FuncId(0)).blocks[1].term {
            *else_ = BlockId(2);
        }
        let map = ReplicaMap::identity(&m);
        let p = StaticPrediction::with_default(true);
        let diags = validate_replication(&m, &r, &map, &p);
        assert!(diags.iter().any(|d| d.code == DiagCode::OrphanReplicaEdge));
    }

    #[test]
    fn swapped_prediction_is_br006() {
        let m = small_module();
        let mut map = ReplicaMap::identity(&m);
        map.functions[0].machine_predictions[1] = Some(false);
        let p = StaticPrediction::with_default(true); // ships `true`
        let diags = validate_replication(&m, &m, &map, &p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::PredictionMismatch);
    }

    #[test]
    fn renamed_register_is_caught() {
        let m = small_module();
        let mut r = m.clone();
        let f = r.function_mut(brepl_ir::FuncId(0));
        // Rename the counter read in the loop body to a different register.
        let fresh = Reg(f.n_regs);
        f.n_regs += 1;
        if let brepl_ir::Inst::Bin { lhs, .. } = &mut f.blocks[2].insts[0] {
            *lhs = Operand::Reg(fresh);
        }
        let map = ReplicaMap::identity(&m);
        let p = StaticPrediction::with_default(true);
        let diags = validate_replication(&m, &r, &map, &p);
        // The edit changes the instruction stream and introduces a fresh
        // live-in.
        assert!(diags.iter().any(|d| d.code == DiagCode::InstStreamMismatch));
        assert!(diags.iter().any(|d| d.code == DiagCode::LiveInMismatch));
    }

    #[test]
    fn unreachable_replica_is_br001_warning() {
        let m = small_module();
        let mut r = m.clone();
        let f = r.function_mut(brepl_ir::FuncId(0));
        f.blocks.push(brepl_ir::Block {
            insts: vec![],
            term: Term::Ret { value: None },
        });
        let mut map = ReplicaMap::identity(&m);
        map.functions[0].origins.push(vec![BlockId(3)]);
        map.functions[0].machine_predictions.push(None);
        let p = StaticPrediction::with_default(true);
        let diags = validate_replication(&m, &r, &map, &p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::UnreachableReplica);
        assert_eq!(diags[0].severity(), crate::diag::Severity::Warning);
    }

    #[test]
    fn malformed_map_is_br008() {
        let m = small_module();
        let mut map = ReplicaMap::identity(&m);
        map.functions[0].origins[1].clear();
        let p = StaticPrediction::with_default(true);
        let diags = validate_replication(&m, &m, &map, &p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::InvalidReplicaMap);
    }

    #[test]
    fn merged_chain_validates_clean() {
        // Simulate the simplifier merging head-less straight-line blocks:
        // original a -> b (a: jmp b), replica has one block [a;b].
        let mut b = FunctionBuilder::new("main", 0);
        let x = b.reg();
        let nextb = b.new_block();
        b.const_int(x, 1);
        b.jmp(nextb);
        b.switch_to(nextb);
        b.add(x, x.into(), Operand::imm(1));
        b.ret(Some(x.into()));
        let mut m = Module::new();
        m.push_function(b.finish());

        let mut rb = FunctionBuilder::new("main", 0);
        let rx = rb.reg();
        rb.const_int(rx, 1);
        rb.add(rx, rx.into(), Operand::imm(1));
        rb.ret(Some(rx.into()));
        let mut r = Module::new();
        r.push_function(rb.finish());

        let map = ReplicaMap {
            functions: vec![ReplicaFuncMap {
                origins: vec![vec![BlockId(0), BlockId(1)]],
                machine_predictions: vec![None],
            }],
        };
        let p = StaticPrediction::with_default(true);
        let diags = validate_replication(&m, &r, &map, &p);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
