//! The generic worklist dataflow solver.
//!
//! An analysis implements [`DataflowAnalysis`] (arbitrary meet lattice) or
//! instantiates the ready-made [`GenKill`] engine (bit-vector problems:
//! transfer `out = gen ∪ (in − kill)` with a union or intersection meet).
//! [`solve`] runs the classic iterative worklist algorithm over a
//! [`Cfg`], seeding the worklist in reverse postorder for forward problems
//! and postorder for backward ones, and returns per-block facts at block
//! entry and exit. Unreachable blocks keep the top fact.

use brepl_cfg::{postorder, reverse_postorder, Cfg};
use brepl_ir::BlockId;

use crate::bitset::BitSet;

/// Which way facts flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along CFG edges (e.g. reaching definitions).
    Forward,
    /// Facts flow against CFG edges (e.g. liveness).
    Backward,
}

/// A dataflow problem over an arbitrary meet semilattice.
pub trait DataflowAnalysis {
    /// The lattice element attached to each program point.
    type Fact: Clone + PartialEq;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The fact at the boundary: function entry for forward problems,
    /// every function exit (`ret` terminator) for backward problems.
    fn boundary_fact(&self) -> Self::Fact;

    /// The identity of the meet (the optimistic initial fact).
    fn top_fact(&self) -> Self::Fact;

    /// `acc = acc ⊓ other`; returns true when `acc` changed.
    fn meet_into(&self, acc: &mut Self::Fact, other: &Self::Fact) -> bool;

    /// The block transfer function, applied to the fact flowing *into* the
    /// block (at its entry for forward problems, at its exit for backward
    /// ones).
    fn transfer(&self, block: BlockId, input: &Self::Fact) -> Self::Fact;
}

/// Per-block fixpoint facts produced by [`solve`].
#[derive(Clone, Debug)]
pub struct DataflowSolution<F> {
    /// The fact holding at each block's entry.
    pub entry: Vec<F>,
    /// The fact holding at each block's exit.
    pub exit: Vec<F>,
}

/// Convergence accounting returned by [`solve_metered`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolveStats {
    /// Block-processings performed (worklist pops).
    pub steps: u64,
    /// True when the worklist drained — the facts are a true fixpoint.
    /// False when the step budget ran out first; the returned facts are the
    /// last iterate, not a fixpoint, and any client gating correctness on
    /// them must fail closed.
    pub converged: bool,
}

/// The default step budget for a CFG with `n_blocks` blocks.
///
/// Every in-crate analysis is a monotone bit-vector problem that converges
/// in at most `blocks × lattice-height` block-processings, far below this
/// bound — the budget exists so an adversarial [`DataflowAnalysis`]
/// implementation (a non-monotone transfer, an unbounded lattice) makes
/// [`solve`] terminate with `converged: false` instead of spinning forever.
pub fn default_solve_budget(n_blocks: usize) -> u64 {
    (n_blocks as u64).saturating_mul(1024).max(1 << 16)
}

/// Runs the worklist algorithm for `analysis` over `cfg` to a fixpoint.
///
/// Termination requires the usual conditions: a finite-height lattice and a
/// monotone transfer function. All analyses in this crate satisfy both; as
/// a backstop, iteration is capped at [`default_solve_budget`] steps (see
/// [`solve_metered`] for the capped variant with convergence accounting).
pub fn solve<A: DataflowAnalysis>(cfg: &Cfg, analysis: &A) -> DataflowSolution<A::Fact> {
    solve_metered(cfg, analysis, default_solve_budget(cfg.len())).0
}

/// [`solve`] with an explicit step budget, reporting whether the worklist
/// actually drained. Each worklist pop costs one step; when `max_steps`
/// runs out the queue is abandoned and `converged` is false.
pub fn solve_metered<A: DataflowAnalysis>(
    cfg: &Cfg,
    analysis: &A,
    max_steps: u64,
) -> (DataflowSolution<A::Fact>, SolveStats) {
    let n = cfg.len();
    let forward = analysis.direction() == Direction::Forward;
    let mut entry = vec![analysis.top_fact(); n];
    let mut exit = vec![analysis.top_fact(); n];

    // Seed in an order that visits definers before users where possible, so
    // most facts converge in one or two sweeps.
    let seed = if forward {
        reverse_postorder(cfg)
    } else {
        postorder(cfg)
    };
    let mut queue: std::collections::VecDeque<BlockId> = seed.into_iter().collect();
    let mut queued = vec![false; n];
    for &b in &queue {
        queued[b.index()] = true;
    }

    let mut steps = 0u64;
    let mut converged = true;
    while let Some(b) = queue.pop_front() {
        if steps >= max_steps {
            converged = false;
            break;
        }
        steps += 1;
        queued[b.index()] = false;
        let i = b.index();

        // Meet the facts flowing into this block.
        let mut incoming = analysis.top_fact();
        if forward {
            if b == cfg.entry() {
                analysis.meet_into(&mut incoming, &analysis.boundary_fact());
            }
            for &p in cfg.preds(b) {
                analysis.meet_into(&mut incoming, &exit[p.index()]);
            }
        } else {
            if cfg.succs(b).is_empty() {
                analysis.meet_into(&mut incoming, &analysis.boundary_fact());
            }
            for &s in cfg.succs(b) {
                analysis.meet_into(&mut incoming, &entry[s.index()]);
            }
        }

        let outgoing = analysis.transfer(b, &incoming);
        let (in_slot, out_slot) = if forward {
            (&mut entry[i], &mut exit[i])
        } else {
            (&mut exit[i], &mut entry[i])
        };
        *in_slot = incoming;
        if outgoing != *out_slot {
            *out_slot = outgoing;
            let dependents = if forward { cfg.succs(b) } else { cfg.preds(b) };
            for &d in dependents {
                if !queued[d.index()] {
                    queued[d.index()] = true;
                    queue.push_back(d);
                }
            }
        }
    }

    (
        DataflowSolution { entry, exit },
        SolveStats { steps, converged },
    )
}

/// The meet operator of a bit-vector problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Meet {
    /// May-analysis: a fact holds if it holds on *some* path (top = ∅).
    Union,
    /// Must-analysis: a fact holds if it holds on *every* path (top = full).
    Intersect,
}

/// A concrete gen/kill bit-vector problem, ready to hand to [`solve`]:
/// `transfer(b, in) = gen[b] ∪ (in − kill[b])`.
#[derive(Clone, Debug)]
pub struct GenKill {
    /// Flow direction.
    pub direction: Direction,
    /// Meet operator (determines the top fact).
    pub meet: Meet,
    /// The fact at the boundary (entry or exits, per direction).
    pub boundary: BitSet,
    /// Per-block generated facts.
    pub gen: Vec<BitSet>,
    /// Per-block killed facts.
    pub kill: Vec<BitSet>,
    domain: usize,
}

impl GenKill {
    /// Builds a gen/kill problem with empty gen/kill sets for `n_blocks`
    /// blocks over a fact universe of `domain` bits. The boundary fact
    /// starts empty; callers fill `gen`, `kill` and `boundary`.
    pub fn new(direction: Direction, meet: Meet, n_blocks: usize, domain: usize) -> Self {
        GenKill {
            direction,
            meet,
            boundary: BitSet::new_empty(domain),
            gen: vec![BitSet::new_empty(domain); n_blocks],
            kill: vec![BitSet::new_empty(domain); n_blocks],
            domain,
        }
    }

    /// The fact universe size.
    pub fn domain(&self) -> usize {
        self.domain
    }
}

impl DataflowAnalysis for GenKill {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        self.direction
    }

    fn boundary_fact(&self) -> BitSet {
        self.boundary.clone()
    }

    fn top_fact(&self) -> BitSet {
        match self.meet {
            Meet::Union => BitSet::new_empty(self.domain),
            Meet::Intersect => BitSet::new_full(self.domain),
        }
    }

    fn meet_into(&self, acc: &mut BitSet, other: &BitSet) -> bool {
        match self.meet {
            Meet::Union => acc.union_with(other),
            Meet::Intersect => acc.intersect_with(other),
        }
    }

    fn transfer(&self, block: BlockId, input: &BitSet) -> BitSet {
        let mut out = input.clone();
        out.subtract(&self.kill[block.index()]);
        out.union_with(&self.gen[block.index()]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};

    /// b0 -> b1 -> b2, with a back edge b2 -> b1.
    fn looped() -> brepl_ir::Function {
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let head = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, head, exit);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn forward_union_propagates_through_loop() {
        let f = looped();
        let cfg = Cfg::new(&f);
        // "Fact 0 is generated in the entry block" must reach everything.
        let mut p = GenKill::new(Direction::Forward, Meet::Union, cfg.len(), 1);
        p.gen[0].insert(0);
        let sol = solve(&cfg, &p);
        for b in cfg.blocks() {
            if b != cfg.entry() {
                assert!(sol.entry[b.index()].contains(0), "missing at {b}");
            }
            assert!(sol.exit[b.index()].contains(0), "missing at {b} exit");
        }
    }

    #[test]
    fn forward_intersect_kills_on_any_path() {
        // Diamond where only one arm generates the fact: must-analysis says
        // it does NOT hold at the join.
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let mut p = GenKill::new(Direction::Forward, Meet::Intersect, cfg.len(), 1);
        p.gen[1].insert(0); // only the then-arm
        let sol = solve(&cfg, &p);
        assert!(sol.exit[1].contains(0));
        assert!(!sol.entry[3].contains(0));
    }

    #[test]
    fn backward_reaches_predecessors() {
        let f = looped();
        let cfg = Cfg::new(&f);
        // Fact generated in the exit block flows backward everywhere.
        let mut p = GenKill::new(Direction::Backward, Meet::Union, cfg.len(), 1);
        p.gen[2].insert(0);
        let sol = solve(&cfg, &p);
        assert!(sol.entry[2].contains(0));
        assert!(sol.exit[1].contains(0));
        assert!(sol.entry[0].contains(0));
    }

    #[test]
    fn budget_exhaustion_is_reported_not_hung() {
        let f = looped();
        let cfg = Cfg::new(&f);
        let mut p = GenKill::new(Direction::Forward, Meet::Union, cfg.len(), 1);
        p.gen[0].insert(0);
        // One step cannot drain a 3-block worklist.
        let (_, stats) = solve_metered(&cfg, &p, 1);
        assert_eq!(stats.steps, 1);
        assert!(!stats.converged);
        // A generous budget converges and reports so.
        let (sol, stats) = solve_metered(&cfg, &p, default_solve_budget(cfg.len()));
        assert!(stats.converged);
        assert!(stats.steps >= cfg.len() as u64);
        assert!(sol.exit[2].contains(0));
    }

    #[test]
    fn unreachable_blocks_keep_top() {
        let mut b = FunctionBuilder::new("f", 0);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let p = GenKill::new(Direction::Forward, Meet::Intersect, cfg.len(), 3);
        let sol = solve(&cfg, &p);
        assert_eq!(sol.entry[1], BitSet::new_full(3));
    }
}
