//! Golden bit-identity suite: the pre-decoded execution engine
//! ([`brepl::sim::Machine`]) against the reference tree-walk interpreter
//! ([`brepl::sim::ReferenceMachine`]).
//!
//! The fast engine re-architects dispatch (flat op arena, packed
//! operands, lazily grown heap, reused register stack) but must be
//! observationally *bit-identical* to the oracle: same return values,
//! same step counts, same output tapes, byte-identical serialized traces,
//! and the same typed errors on the same inputs. These tests pin that
//! contract on the full eight-program workload suite, on synthesized
//! fuzz modules, and on the analysis pipeline's outputs.

mod common;

use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl::sim::{Machine, ReferenceMachine, RunConfig, RunError};
use brepl_core::select_strategies;
use brepl_ir::{FunctionBuilder, Operand, Value};
use brepl_workloads::{all_workloads, Scale};
use common::Gen;

/// One engine's run: the outcome (or typed error) plus the output tape.
type EngineRun = (Result<brepl::sim::Outcome, RunError>, Vec<Value>);

/// Runs both engines on the same module/args/input and returns
/// `(fast outcome, oracle outcome, fast output, oracle output)`.
fn run_both(
    module: &brepl_ir::Module,
    config: RunConfig,
    args: &[Value],
    input: &[Value],
) -> (EngineRun, EngineRun) {
    let mut fast = Machine::new(module, config).expect("fast engine constructs");
    fast.set_input(input.to_vec());
    let a = fast.run("main", args);
    let mut oracle = ReferenceMachine::new(module, config).expect("oracle constructs");
    oracle.set_input(input.to_vec());
    let b = oracle.run("main", args);
    ((a, fast.output().to_vec()), (b, oracle.output().to_vec()))
}

#[test]
fn all_workloads_are_bit_identical_between_engines() {
    for w in all_workloads(Scale::Small) {
        let ((a, out_a), (b, out_b)) = run_both(&w.module, RunConfig::default(), &w.args, &w.input);
        let a = a.unwrap_or_else(|e| panic!("{}: fast engine failed: {e}", w.name));
        let b = b.unwrap_or_else(|e| panic!("{}: oracle failed: {e}", w.name));
        assert_eq!(a.result, b.result, "{}: results diverge", w.name);
        assert_eq!(a.steps, b.steps, "{}: step counts diverge", w.name);
        assert_eq!(out_a, out_b, "{}: output tapes diverge", w.name);
        assert_eq!(
            a.trace.to_bytes(),
            b.trace.to_bytes(),
            "{}: serialized traces diverge",
            w.name
        );
    }
}

#[test]
fn synthesized_modules_are_bit_identical_between_engines() {
    for case in 0..24u64 {
        let mut g = Gen::new(0x000B_171D ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seed = g.next();
        let diamonds = g.below(4) as usize + 1;
        let trip = g.below(200) as i64 + 5;
        let module = common::random_loop_module(seed, diamonds, trip);
        let ((a, out_a), (b, out_b)) = run_both(&module, RunConfig::default(), &[], &[]);
        assert_eq!(a, b, "case {case}: outcomes diverge");
        assert_eq!(out_a, out_b, "case {case}: output tapes diverge");
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(
            a.trace.to_bytes(),
            b.trace.to_bytes(),
            "case {case}: serialized traces diverge"
        );
    }
}

/// Resource errors must be identical too: both engines run the same fuel
/// accounting, so a starved run fails the same way at the same point,
/// and a generous run still agrees event for event.
#[test]
fn fuel_exhaustion_is_bit_identical() {
    let module = common::random_loop_module(0xFEE1, 3, 500);
    for fuel in [1u64, 10, 100, 1_000, 10_000] {
        let config = RunConfig {
            fuel,
            ..RunConfig::default()
        };
        let ((a, out_a), (b, out_b)) = run_both(&module, config, &[], &[]);
        assert_eq!(a, b, "fuel {fuel}: outcomes diverge");
        assert_eq!(out_a, out_b, "fuel {fuel}: partial output tapes diverge");
        if fuel <= 100 {
            assert_eq!(a, Err(RunError::OutOfFuel), "fuel {fuel}");
        }
    }
}

/// Trap paths: both engines must raise the same typed error for the same
/// malformed or trapping program.
#[test]
fn runtime_errors_are_bit_identical() {
    // Division by zero.
    let mut b = FunctionBuilder::new("main", 1);
    let n = b.param(0);
    let r = b.reg();
    b.div(r, Operand::imm(1), n.into());
    b.ret(Some(r.into()));
    let mut m = brepl_ir::Module::new();
    m.push_function(b.finish());
    let ((a, _), (o, _)) = run_both(&m, RunConfig::default(), &[Value::Int(0)], &[]);
    assert_eq!(a, o);
    assert!(a.is_err(), "dividing by zero must trap in both engines");

    // Bad address (negative), via a store.
    let mut b = FunctionBuilder::new("main", 0);
    b.store(Operand::imm(-1), Operand::imm(7));
    b.ret(None);
    let mut m = brepl_ir::Module::new();
    m.push_function(b.finish());
    let ((a, _), (o, _)) = run_both(&m, RunConfig::default(), &[], &[]);
    assert_eq!(a, o);
    assert!(a.is_err(), "negative addresses must trap in both engines");
}

/// The input tape and PRNG are machine state, not module state: both
/// engines must consume them identically.
#[test]
fn input_and_prng_are_bit_identical() {
    let mut b = FunctionBuilder::new("main", 0);
    let x = b.input();
    let y = b.input();
    let r = b.rand(Operand::imm(1000));
    let s = b.reg();
    b.add(s, x.into(), y.into());
    b.add(s, s.into(), r.into());
    b.out(s.into());
    b.ret(Some(s.into()));
    let mut m = brepl_ir::Module::new();
    m.push_function(b.finish());
    let input = vec![Value::Int(40), Value::Int(2)];
    let ((a, out_a), (o, out_o)) = run_both(&m, RunConfig::default(), &[], &input);
    assert_eq!(a, o);
    assert_eq!(out_a, out_o);
    assert!(a.unwrap().result.is_some());
}

/// Pipeline-level identity: profiling with the oracle yields the same
/// trace the pipeline's fast engine profiled with, so selecting over the
/// oracle trace reproduces the pipeline's own selection exactly.
#[test]
fn pipeline_results_match_oracle_profiles() {
    for w in all_workloads(Scale::Small) {
        let config = PipelineConfig::default();
        let r = run_pipeline(&w.module, &w.args, &w.input, config)
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", w.name));
        let mut oracle = ReferenceMachine::new(&w.module, config.run).unwrap();
        oracle.set_input(w.input.clone());
        let oracle_trace = oracle.run("main", &w.args).unwrap().trace;
        assert_eq!(
            r.trace_events,
            oracle_trace.len() as u64,
            "{}: profiling trace length diverges",
            w.name
        );
        let oracle_selection = select_strategies(&w.module, &oracle_trace, config.max_states);
        assert_eq!(
            r.selection, oracle_selection,
            "{}: selection over the oracle trace diverges from the pipeline's",
            w.name
        );
    }
}
