//! Differential fuzz harness: deterministic random programs through the
//! full pipeline, asserting no panic and execution equivalence; plus a
//! totality fuzz of the trace codec.
//!
//! Failures shrink automatically to a minimal `(seed, diamonds, trip)`
//! triple printed in the panic message — regenerate the failing module
//! with `brepl_workloads::synth::random_loop_module(seed, diamonds,
//! trip)`. The release-mode `fuzz` bin in `brepl-bench` runs the same
//! harness for thousands of iterations; this tier-1 sweep keeps a bounded
//! slice of it in `cargo test`.

mod common;

use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl::trace::{Trace, TraceEvent};
use brepl::workloads::synth::{random_loop_module, Gen};
use brepl_ir::BranchId;

/// One fuzz case: build the module and run the full pipeline (all gates +
/// dynamic backstop on, so success implies execution equivalence between
/// the original and the shipped program). `Err` carries a description of
/// the failure; a panic anywhere inside is caught and reported too.
fn pipeline_case(
    seed: u64,
    diamonds: usize,
    trip: i64,
    config: PipelineConfig,
) -> Result<(), String> {
    let outcome = std::panic::catch_unwind(|| {
        let m = random_loop_module(seed, diamonds, trip);
        run_pipeline(&m, &[], &[], config)
    });
    match outcome {
        Err(payload) => Err(format!("panicked: {}", panic_text(&payload))),
        Ok(Err(e)) => Err(format!("pipeline error: {e}")),
        Ok(Ok(result)) => {
            // Quarantine may legitimately fire under tight budgets, but a
            // clean default run must never quarantine.
            if config.strict && !result.quarantined.is_empty() {
                Err("strict run returned quarantined sites".to_string())
            } else {
                Ok(())
            }
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string payload>".to_string())
}

/// Greedily shrinks a failing case to a minimal reproducer and formats
/// the recipe to print. Shrinking preserves the failure, reducing
/// `diamonds` first (structure), then halving `trip` (work).
fn shrink_report(
    seed: u64,
    diamonds: usize,
    trip: i64,
    config: PipelineConfig,
    err: &str,
) -> String {
    let (mut d, mut t) = (diamonds, trip);
    loop {
        if d > 0 && pipeline_case(seed, d - 1, t, config).is_err() {
            d -= 1;
        } else if t > 1 && pipeline_case(seed, d, t / 2, config).is_err() {
            t /= 2;
        } else {
            break;
        }
    }
    format!(
        "fuzz failure, minimal repro: seed={seed} diamonds={d} trip={t} \
         (random_loop_module(seed, diamonds, trip)); original failure: {err}"
    )
}

/// Tier-1 slice of the differential fuzz: ~100 deterministic cases with
/// the default config (every gate + the dynamic backstop armed).
#[test]
fn fuzz_pipeline_default_config() {
    let config = PipelineConfig::default();
    for seed in 0..100u64 {
        let diamonds = (seed % 5) as usize;
        let trip = 20 + (seed % 7) as i64 * 20;
        if let Err(e) = pipeline_case(seed, diamonds, trip, config) {
            panic!("{}", shrink_report(seed, diamonds, trip, config, &e));
        }
    }
}

/// The degraded configurations must be equally panic-free: strict mode,
/// refinement off, and a tight realized-growth budget forcing backoff.
#[test]
fn fuzz_pipeline_config_variants() {
    let variants = [
        PipelineConfig {
            strict: true,
            ..PipelineConfig::default()
        },
        PipelineConfig {
            refine: false,
            ..PipelineConfig::default()
        },
        PipelineConfig {
            max_realized_growth: Some(1.2),
            ..PipelineConfig::default()
        },
    ];
    for (v, config) in variants.into_iter().enumerate() {
        for seed in 0..12u64 {
            let diamonds = (seed % 4) as usize;
            let trip = 25 + (seed % 5) as i64 * 15;
            if let Err(e) = pipeline_case(seed, diamonds, trip, config) {
                panic!(
                    "variant {v}: {}",
                    shrink_report(seed, diamonds, trip, config, &e)
                );
            }
        }
    }
}

/// Classification-soundness oracle: a direction verdict contradicted by
/// the simulated trace is an analysis bug, full stop. For each fuzz
/// module: every proved-monostatic verdict must match the honest trace
/// event-by-event, nothing proved unreachable may execute, and the
/// classification gate (exact BoundedBias rationals included) must pass
/// with zero error-severity diagnostics.
fn classify_case(seed: u64, diamonds: usize, trip: i64) -> Result<(), String> {
    let outcome = std::panic::catch_unwind(|| {
        let m = random_loop_module(seed, diamonds, trip);
        let cls = brepl_analysis::classify_module(&m);
        let run = brepl_sim::Machine::new(&m, brepl_sim::RunConfig::default())
            .map_err(|e| format!("machine init: {e}"))?
            .run("main", &[])
            .map_err(|e| format!("run: {e}"))?;
        for ev in run.trace.iter() {
            if let Some(sc) = cls.by_site(ev.site) {
                if !sc.reachable {
                    return Err(format!("site {} proved unreachable but executed", ev.site));
                }
                if let Some(dir) = sc.class.proved_direction() {
                    if ev.taken != dir {
                        return Err(format!(
                            "site {} proved {} but the trace went the other way",
                            ev.site,
                            if dir { "always-taken" } else { "never-taken" },
                        ));
                    }
                }
            }
        }
        let diags = brepl_analysis::classification_diags(&m, &cls, &run.trace.stats());
        let errors: Vec<String> = diags
            .iter()
            .filter(|d| d.severity() == brepl_analysis::Severity::Error)
            .map(|d| d.render(&m))
            .collect();
        if !errors.is_empty() {
            return Err(format!(
                "honest trace fails the gate: {}",
                errors.join("; ")
            ));
        }
        Ok(())
    });
    match outcome {
        Err(payload) => Err(format!("panicked: {}", panic_text(&payload))),
        Ok(r) => r,
    }
}

/// Tier-1 slice of the classification-soundness fuzz; the release-mode
/// `fuzz` bin sweeps thousands of modules through the same oracle.
#[test]
fn fuzz_classification_is_sound() {
    for seed in 0..150u64 {
        let diamonds = (seed % 5) as usize;
        let trip = 10 + (seed % 9) as i64 * 17;
        if let Err(e) = classify_case(seed, diamonds, trip) {
            // Shrink while the violation persists: structure first, then
            // work, mirroring `shrink_report`.
            let (mut d, mut t) = (diamonds, trip);
            loop {
                if d > 0 && classify_case(seed, d - 1, t).is_err() {
                    d -= 1;
                } else if t > 1 && classify_case(seed, d, t / 2).is_err() {
                    t /= 2;
                } else {
                    break;
                }
            }
            panic!(
                "classification unsound, minimal repro: seed={seed} diamonds={d} trip={t} \
                 (random_loop_module(seed, diamonds, trip)); original failure: {e}"
            );
        }
    }
}

/// Estimator totality oracle: the static profile estimator must be a
/// *total* function of the module — never panic, never emit a NaN,
/// infinite or negative frequency, always satisfy its own
/// flow-conservation invariant — and its drift gate must be provably
/// silent on honest data: running the module and handing the estimator's
/// own output plus the real trace to [`brepl_analysis::static_profile_diags`]
/// must fire no `BR019`/`BR020`/`BR021`. (`BR022` fail-closed reports
/// are legitimate on pathological flow, so the oracle tolerates them —
/// fail-closed is the contract, not a bug.)
fn estimate_case(seed: u64, diamonds: usize, trip: i64) -> Result<(), String> {
    use brepl_analysis::DiagCode;
    let outcome = std::panic::catch_unwind(|| {
        let m = random_loop_module(seed, diamonds, trip);
        let cls = brepl_analysis::classify_module(&m);
        let profile = brepl_analysis::estimate_profile(&m, &cls);
        for s in &profile.sites {
            if !s.freq.is_finite() || s.freq < 0.0 {
                return Err(format!("site {} has bogus frequency {}", s.site, s.freq));
            }
            let p = s.bias.prob();
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "site {} bias probability {p} outside [0,1]",
                    s.site
                ));
            }
        }
        for (f, fp) in profile.funcs.iter().enumerate() {
            for freqs in [&fp.bfreq, &fp.prob] {
                if let Some(bad) = freqs.iter().find(|v| !v.is_finite() || **v < 0.0) {
                    return Err(format!("function {f} carries bogus value {bad}"));
                }
            }
        }
        let violations = profile.check_conservation(&m);
        if let Some((f, b, err)) = violations.first() {
            return Err(format!("conservation violated at {f}/{b} by {err}"));
        }
        let run = brepl_sim::Machine::new(&m, brepl_sim::RunConfig::default())
            .map_err(|e| format!("machine init: {e}"))?
            .run("main", &[])
            .map_err(|e| format!("run: {e}"))?;
        let diags = brepl_analysis::static_profile_diags(&m, &cls, &profile, &run.trace.stats());
        let false_alarms: Vec<String> = diags
            .iter()
            .filter(|d| {
                matches!(
                    d.code,
                    DiagCode::EstimateDriftConflict
                        | DiagCode::EstimateUnreachableMass
                        | DiagCode::EstimateConservationViolation
                )
            })
            .map(|d| d.render(&m))
            .collect();
        if !false_alarms.is_empty() {
            return Err(format!(
                "honest trace fires the drift gate: {}",
                false_alarms.join("; ")
            ));
        }
        Ok(())
    });
    match outcome {
        Err(payload) => Err(format!("panicked: {}", panic_text(&payload))),
        Ok(r) => r,
    }
}

/// Tier-1 slice of the estimator totality fuzz; the release-mode `fuzz`
/// bin sweeps thousands of modules through the same oracle.
#[test]
fn fuzz_estimator_is_total_and_gate_silent_when_honest() {
    for seed in 0..150u64 {
        let diamonds = (seed % 5) as usize;
        let trip = 10 + (seed % 9) as i64 * 17;
        if let Err(e) = estimate_case(seed, diamonds, trip) {
            let (mut d, mut t) = (diamonds, trip);
            loop {
                if d > 0 && estimate_case(seed, d - 1, t).is_err() {
                    d -= 1;
                } else if t > 1 && estimate_case(seed, d, t / 2).is_err() {
                    t /= 2;
                } else {
                    break;
                }
            }
            panic!(
                "estimator broken, minimal repro: seed={seed} diamonds={d} trip={t} \
                 (random_loop_module(seed, diamonds, trip)); original failure: {e}"
            );
        }
    }
}

/// Codec totality fuzz: random traces round-trip exactly; byte mutations,
/// truncations and garbage always decode to `Ok` or a typed error — a
/// panic anywhere fails the test by unwinding.
#[test]
fn fuzz_trace_codec_total() {
    let mut g = Gen::new(0xC0DEC);
    for case in 0..200u64 {
        let len = g.below(400) as usize + 1;
        let sites = g.below(60) + 1;
        let mut t = Trace::new();
        for _ in 0..len {
            t.push(TraceEvent {
                site: BranchId(g.below(sites) as u32),
                taken: g.below(2) == 1,
            });
        }
        let bytes = t.to_bytes();
        assert_eq!(
            Trace::from_bytes(&bytes).unwrap(),
            t,
            "case {case}: round-trip mismatch"
        );
        // Single-byte mutation at a random offset.
        let mut mutated = bytes.clone();
        let at = g.below(mutated.len() as u64) as usize;
        mutated[at] ^= (g.below(255) + 1) as u8;
        let _ = Trace::from_bytes(&mutated);
        // Random truncation.
        let cut = g.below(bytes.len() as u64) as usize;
        let _ = Trace::from_bytes(&bytes[..cut]);
        // Pure garbage of random length.
        let glen = g.below(64) as usize;
        let garbage: Vec<u8> = (0..glen).map(|_| g.next() as u8).collect();
        let _ = Trace::from_bytes(&garbage);
    }
}
