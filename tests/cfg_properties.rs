//! Property-based testing of the control-flow analyses on random
//! generated programs.

mod common;

use brepl::cfg::{Cfg, ClassifiedBranches, DomTree, LoopForest};
use brepl::ir::FuncId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dominator facts: the entry dominates everything reachable; idom
    /// strictly dominates its node; dominance is consistent with a brute
    /// force path check on small graphs.
    #[test]
    fn dominator_invariants(
        seed in any::<u64>(),
        diamonds in 0usize..5,
        trip in 1i64..20,
    ) {
        let module = common::random_loop_module(seed, diamonds, trip);
        let func = module.function(FuncId(0));
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        for b in cfg.blocks() {
            if !dom.is_reachable(b) {
                continue;
            }
            prop_assert!(dom.dominates(cfg.entry(), b));
            prop_assert!(dom.dominates(b, b));
            if let Some(idom) = dom.idom(b) {
                prop_assert!(dom.strictly_dominates(idom, b));
            }
        }
    }

    /// Loop facts: headers dominate every loop block; back edges end at
    /// the header; exit edges leave the block set; nesting parents are
    /// strict supersets.
    #[test]
    fn loop_invariants(
        seed in any::<u64>(),
        diamonds in 0usize..5,
        trip in 1i64..20,
    ) {
        let module = common::random_loop_module(seed, diamonds, trip);
        let func = module.function(FuncId(0));
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        for l in forest.loops() {
            for &b in &l.blocks {
                prop_assert!(dom.dominates(l.header, b));
            }
            for &(tail, head) in &l.back_edges {
                prop_assert_eq!(head, l.header);
                prop_assert!(l.blocks.contains(&tail));
            }
            for &(from, to) in &l.exit_edges {
                prop_assert!(l.blocks.contains(&from));
                prop_assert!(!l.blocks.contains(&to));
            }
            if let Some(parent) = l.parent {
                let p = forest.get(parent);
                prop_assert!(p.blocks.is_superset(&l.blocks));
                prop_assert!(p.blocks.len() > l.blocks.len());
                prop_assert_eq!(p.depth + 1, l.depth);
            }
        }
    }

    /// Branch classification covers every conditional branch exactly once,
    /// and class membership matches target membership.
    #[test]
    fn classification_invariants(
        seed in any::<u64>(),
        diamonds in 0usize..5,
        trip in 1i64..20,
    ) {
        let module = common::random_loop_module(seed, diamonds, trip);
        let func = module.function(FuncId(0));
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        let classes = ClassifiedBranches::analyze(func, &forest);
        prop_assert_eq!(classes.branches().len(), func.branch_count());
        for info in classes.branches() {
            match info.class {
                brepl::cfg::BranchClass::IntraLoop => {
                    prop_assert!(info.then_in_loop && info.else_in_loop);
                    prop_assert!(info.innermost_loop.is_some());
                }
                brepl::cfg::BranchClass::LoopExit => {
                    prop_assert!(!(info.then_in_loop && info.else_in_loop));
                    prop_assert!(info.innermost_loop.is_some());
                }
                brepl::cfg::BranchClass::NonLoop => {
                    prop_assert!(info.innermost_loop.is_none());
                }
            }
        }
    }
}
