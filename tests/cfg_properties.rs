//! Property-style testing of the control-flow analyses on random
//! generated programs. Cases are driven by a deterministic xorshift
//! generator (the workspace builds with zero network access, so no
//! external property-testing framework).

mod common;

use brepl::cfg::{Cfg, ClassifiedBranches, DomTree, LoopForest};
use brepl::ir::FuncId;
use common::Gen;

const CASES: u64 = 48;

/// Derives one case's generator parameters: an arbitrary module seed,
/// 0..5 diamonds and a 1..20 trip count.
fn case_params(salt: u64, case: u64) -> (u64, usize, i64) {
    let mut g = Gen::new(salt ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let seed = g.next();
    let diamonds = g.below(5) as usize;
    let trip = g.below(19) as i64 + 1;
    (seed, diamonds, trip)
}

/// Dominator facts: the entry dominates everything reachable; idom
/// strictly dominates its node.
#[test]
fn dominator_invariants() {
    for case in 0..CASES {
        let (seed, diamonds, trip) = case_params(0xD0D0, case);
        let module = common::random_loop_module(seed, diamonds, trip);
        let func = module.function(FuncId(0));
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        for b in cfg.blocks() {
            if !dom.is_reachable(b) {
                continue;
            }
            assert!(dom.dominates(cfg.entry(), b), "case {case}");
            assert!(dom.dominates(b, b), "case {case}");
            if let Some(idom) = dom.idom(b) {
                assert!(dom.strictly_dominates(idom, b), "case {case}");
            }
        }
    }
}

/// Loop facts: headers dominate every loop block; back edges end at
/// the header; exit edges leave the block set; nesting parents are
/// strict supersets.
#[test]
fn loop_invariants() {
    for case in 0..CASES {
        let (seed, diamonds, trip) = case_params(0x100B, case);
        let module = common::random_loop_module(seed, diamonds, trip);
        let func = module.function(FuncId(0));
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        for l in forest.loops() {
            for &b in &l.blocks {
                assert!(dom.dominates(l.header, b), "case {case}");
            }
            for &(tail, head) in &l.back_edges {
                assert_eq!(head, l.header, "case {case}");
                assert!(l.blocks.contains(&tail), "case {case}");
            }
            for &(from, to) in &l.exit_edges {
                assert!(l.blocks.contains(&from), "case {case}");
                assert!(!l.blocks.contains(&to), "case {case}");
            }
            if let Some(parent) = l.parent {
                let p = forest.get(parent);
                assert!(p.blocks.is_superset(&l.blocks), "case {case}");
                assert!(p.blocks.len() > l.blocks.len(), "case {case}");
                assert_eq!(p.depth + 1, l.depth, "case {case}");
            }
        }
    }
}

/// Branch classification covers every conditional branch exactly once,
/// and class membership matches target membership.
#[test]
fn classification_invariants() {
    for case in 0..CASES {
        let (seed, diamonds, trip) = case_params(0xC1A5, case);
        let module = common::random_loop_module(seed, diamonds, trip);
        let func = module.function(FuncId(0));
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        let classes = ClassifiedBranches::analyze(func, &forest);
        assert_eq!(classes.branches().len(), func.branch_count(), "case {case}");
        for info in classes.branches() {
            match info.class {
                brepl::cfg::BranchClass::IntraLoop => {
                    assert!(info.then_in_loop && info.else_in_loop, "case {case}");
                    assert!(info.innermost_loop.is_some(), "case {case}");
                }
                brepl::cfg::BranchClass::LoopExit => {
                    assert!(!(info.then_in_loop && info.else_in_loop), "case {case}");
                    assert!(info.innermost_loop.is_some(), "case {case}");
                }
                brepl::cfg::BranchClass::NonLoop => {
                    assert!(info.innermost_loop.is_none(), "case {case}");
                }
            }
        }
    }
}
