//! The parallel selection engine must be *bit-identical* to the serial
//! path: `select_strategies_with_threads(.., 1)` and the same call with
//! several workers must produce exactly equal [`Selection`]s — same
//! choices, same machines, same tie-breaking — for any module and any
//! state budget. The engine merges per-site results in site order and the
//! search memo caches exactly what recomputation would produce, so the
//! schedule cannot leak into the output.

mod common;

use brepl::core::{select_strategies, select_strategies_with_threads};
use brepl::sim::{Machine, RunConfig};
use common::Gen;

#[test]
fn parallel_selection_is_bit_identical_to_serial() {
    for case in 0..10u64 {
        let mut g = Gen::new(0xB17 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seed = g.next();
        let diamonds = g.below(4) as usize + 1;
        let trip = g.below(120) as i64 + 8;
        let module = common::random_loop_module(seed, diamonds, trip);
        let trace = Machine::new(&module, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .expect("terminates")
            .trace;
        for max_states in [2usize, 4, 6] {
            let serial = select_strategies_with_threads(&module, &trace, max_states, 1);
            for threads in [2usize, 4, 8] {
                // Empty the memo so the parallel call re-runs the search
                // instead of trivially returning the serial run's cached
                // whole-selection entry.
                brepl::core::memo::clear();
                let parallel = select_strategies_with_threads(&module, &trace, max_states, threads);
                assert_eq!(
                    serial, parallel,
                    "case {case}, max_states {max_states}, {threads} threads"
                );
            }
        }
    }
}

/// The memo must also be invisible: a cold and a warm run of the same
/// selection are equal.
#[test]
fn memo_hits_do_not_change_results() {
    let mut g = Gen::new(0x3E30);
    let module = common::random_loop_module(g.next(), 3, 64);
    let trace = Machine::new(&module, RunConfig::default())
        .unwrap()
        .run("main", &[])
        .expect("terminates")
        .trace;
    let cold = select_strategies(&module, &trace, 4);
    let warm = select_strategies(&module, &trace, 4);
    assert_eq!(cold, warm);
    // Sweeping other budgets around it must not disturb the answer either.
    for n in 2..=6usize {
        let _ = select_strategies(&module, &trace, n);
    }
    assert_eq!(select_strategies(&module, &trace, 4), cold);
}

/// The suite-level fan-out of whole pipelines must be bit-identical to a
/// serial loop: same selections, same shipped modules, same predictions,
/// same enabled sites — for every worker count.
#[test]
fn pipeline_suite_is_bit_identical_serial_vs_parallel() {
    use brepl::pipeline::{run_pipeline_suite_with_threads, PipelineConfig, PipelineJob};

    let mut g = Gen::new(0x5017E);
    let modules: Vec<_> = (0..4usize)
        .map(|i| common::random_loop_module(g.next(), (i % 3) + 1, 40 + 10 * i as i64))
        .collect();
    let jobs: Vec<PipelineJob> = modules
        .iter()
        .map(|m| PipelineJob {
            module: m,
            args: &[],
            input: &[],
        })
        .collect();

    let serial = run_pipeline_suite_with_threads(&jobs, PipelineConfig::default(), 1);
    brepl::core::memo::clear();
    let parallel = run_pipeline_suite_with_threads(&jobs, PipelineConfig::default(), 4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let (s, p) = match (s, p) {
            (Ok(s), Ok(p)) => (s, p),
            _ => panic!("job {i}: both modes must succeed on these modules"),
        };
        assert_eq!(s.selection, p.selection, "job {i}: selections differ");
        assert_eq!(
            s.replicated_sites, p.replicated_sites,
            "job {i}: enabled sites differ"
        );
        assert_eq!(s.trace_events, p.trace_events, "job {i}");
        assert_eq!(
            s.program.module, p.program.module,
            "job {i}: shipped modules differ"
        );
        assert_eq!(
            s.program.predictions, p.program.predictions,
            "job {i}: predictions differ"
        );
        assert_eq!(
            s.replicated_misprediction_percent.to_bits(),
            p.replicated_misprediction_percent.to_bits(),
            "job {i}: realized misprediction differs"
        );
    }
}
