//! The parallel selection engine must be *bit-identical* to the serial
//! path: `select_strategies_with_threads(.., 1)` and the same call with
//! several workers must produce exactly equal [`Selection`]s — same
//! choices, same machines, same tie-breaking — for any module and any
//! state budget. The engine merges per-site results in site order and the
//! search memo caches exactly what recomputation would produce, so the
//! schedule cannot leak into the output.

mod common;

use brepl::core::{select_strategies, select_strategies_with_threads};
use brepl::sim::{Machine, RunConfig};
use common::Gen;

#[test]
fn parallel_selection_is_bit_identical_to_serial() {
    for case in 0..10u64 {
        let mut g = Gen::new(0xB17 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seed = g.next();
        let diamonds = g.below(4) as usize + 1;
        let trip = g.below(120) as i64 + 8;
        let module = common::random_loop_module(seed, diamonds, trip);
        let trace = Machine::new(&module, RunConfig::default())
            .run("main", &[])
            .expect("terminates")
            .trace;
        for max_states in [2usize, 4, 6] {
            let serial = select_strategies_with_threads(&module, &trace, max_states, 1);
            for threads in [2usize, 4, 8] {
                let parallel = select_strategies_with_threads(&module, &trace, max_states, threads);
                assert_eq!(
                    serial, parallel,
                    "case {case}, max_states {max_states}, {threads} threads"
                );
            }
        }
    }
}

/// The memo must also be invisible: a cold and a warm run of the same
/// selection are equal.
#[test]
fn memo_hits_do_not_change_results() {
    let mut g = Gen::new(0x3E30);
    let module = common::random_loop_module(g.next(), 3, 64);
    let trace = Machine::new(&module, RunConfig::default())
        .run("main", &[])
        .expect("terminates")
        .trace;
    let cold = select_strategies(&module, &trace, 4);
    let warm = select_strategies(&module, &trace, 4);
    assert_eq!(cold, warm);
    // Sweeping other budgets around it must not disturb the answer either.
    for n in 2..=6usize {
        let _ = select_strategies(&module, &trace, n);
    }
    assert_eq!(select_strategies(&module, &trace, 4), cold);
}
