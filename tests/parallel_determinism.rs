//! The parallel selection engine must be *bit-identical* to the serial
//! path: `select_strategies_with_threads(.., 1)` and the same call with
//! several workers must produce exactly equal [`Selection`]s — same
//! choices, same machines, same tie-breaking — for any module and any
//! state budget. The engine merges per-site results in site order and the
//! search memo caches exactly what recomputation would produce, so the
//! schedule cannot leak into the output.

mod common;

use brepl::core::{select_strategies, select_strategies_with_threads};
use brepl::sim::{Machine, RunConfig};
use common::Gen;

#[test]
fn parallel_selection_is_bit_identical_to_serial() {
    for case in 0..10u64 {
        let mut g = Gen::new(0xB17 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seed = g.next();
        let diamonds = g.below(4) as usize + 1;
        let trip = g.below(120) as i64 + 8;
        let module = common::random_loop_module(seed, diamonds, trip);
        let trace = Machine::new(&module, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .expect("terminates")
            .trace;
        for max_states in [2usize, 4, 6] {
            let serial = select_strategies_with_threads(&module, &trace, max_states, 1);
            for threads in [2usize, 4, 8] {
                // Empty the memo so the parallel call re-runs the search
                // instead of trivially returning the serial run's cached
                // whole-selection entry.
                brepl::core::memo::clear();
                let parallel = select_strategies_with_threads(&module, &trace, max_states, threads);
                assert_eq!(
                    serial, parallel,
                    "case {case}, max_states {max_states}, {threads} threads"
                );
            }
        }
    }
}

/// The memo must also be invisible: a cold and a warm run of the same
/// selection are equal.
#[test]
fn memo_hits_do_not_change_results() {
    let mut g = Gen::new(0x3E30);
    let module = common::random_loop_module(g.next(), 3, 64);
    let trace = Machine::new(&module, RunConfig::default())
        .unwrap()
        .run("main", &[])
        .expect("terminates")
        .trace;
    let cold = select_strategies(&module, &trace, 4);
    let warm = select_strategies(&module, &trace, 4);
    assert_eq!(cold, warm);
    // Sweeping other budgets around it must not disturb the answer either.
    for n in 2..=6usize {
        let _ = select_strategies(&module, &trace, n);
    }
    assert_eq!(select_strategies(&module, &trace, 4), cold);
}

/// The suite-level fan-out of whole pipelines must be bit-identical to a
/// serial loop: same selections, same shipped modules, same predictions,
/// same enabled sites — for every worker count.
#[test]
fn pipeline_suite_is_bit_identical_serial_vs_parallel() {
    use brepl::pipeline::{run_pipeline_suite_with_threads, PipelineConfig, PipelineJob};

    let mut g = Gen::new(0x5017E);
    let modules: Vec<_> = (0..4usize)
        .map(|i| common::random_loop_module(g.next(), (i % 3) + 1, 40 + 10 * i as i64))
        .collect();
    let jobs: Vec<PipelineJob> = modules
        .iter()
        .map(|m| PipelineJob {
            module: m,
            args: &[],
            input: &[],
        })
        .collect();

    let serial = run_pipeline_suite_with_threads(&jobs, PipelineConfig::default(), 1);
    brepl::core::memo::clear();
    let parallel = run_pipeline_suite_with_threads(&jobs, PipelineConfig::default(), 4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let (s, p) = match (s, p) {
            (Ok(s), Ok(p)) => (s, p),
            _ => panic!("job {i}: both modes must succeed on these modules"),
        };
        assert_eq!(s.selection, p.selection, "job {i}: selections differ");
        assert_eq!(
            s.replicated_sites, p.replicated_sites,
            "job {i}: enabled sites differ"
        );
        assert_eq!(s.trace_events, p.trace_events, "job {i}");
        assert_eq!(
            s.program.module, p.program.module,
            "job {i}: shipped modules differ"
        );
        assert_eq!(
            s.program.predictions, p.program.predictions,
            "job {i}: predictions differ"
        );
        assert_eq!(
            s.replicated_misprediction_percent.to_bits(),
            p.replicated_misprediction_percent.to_bits(),
            "job {i}: realized misprediction differs"
        );
    }
}

/// The adaptive suite fan-out must be bit-identical too — and the bar is
/// higher than for the plain pipeline, because each job's *patch
/// sequence* (detect → commit → verify/rollback decisions across
/// segments) also has to come out event-for-event identical, not just
/// the final module. Three scenario shapes cover the patch kinds: a
/// swap-drift recovery, a machine demotion, and a flapping distribution
/// that ends in rollback + quarantine.
#[test]
fn adaptive_suite_is_bit_identical_serial_vs_parallel() {
    use brepl::pipeline::{run_pipeline_adaptive_suite_with_threads, AdaptiveConfig, AdaptiveJob};
    use brepl::workloads::kmp;
    use brepl::workloads::synth::{gate_tape, input_gate_module, GatePattern};

    let n = 1500;
    let kmp_module = kmp::drift_module();
    let gate_module = input_gate_module();
    let swap = vec![
        kmp::biased_text(n, 7, 1, 4),
        kmp::biased_text(n, 8, 3, 4),
        kmp::biased_text(n, 9, 3, 4),
    ];
    let demote = vec![
        gate_tape(n, GatePattern::Alternating),
        gate_tape(n, GatePattern::Constant(1)),
        gate_tape(n, GatePattern::Constant(1)),
    ];
    let flap: Vec<_> = (0..8u64)
        .map(|k| {
            let (num, den) = if k % 2 == 0 { (1, 4) } else { (3, 4) };
            // 2000 symbols: enough detector windows per segment that the
            // flip-flopping reliably reaches the quarantine threshold.
            kmp::biased_text(2000, 100 + k, num, den)
        })
        .collect();
    let jobs = [
        AdaptiveJob {
            module: &kmp_module,
            args: &[],
            segments: &swap,
        },
        AdaptiveJob {
            module: &gate_module,
            args: &[],
            segments: &demote,
        },
        AdaptiveJob {
            module: &kmp_module,
            args: &[],
            segments: &flap,
        },
    ];

    let serial = run_pipeline_adaptive_suite_with_threads(&jobs, AdaptiveConfig::default(), 1);
    for threads in [2usize, 4] {
        brepl::core::memo::clear();
        let parallel =
            run_pipeline_adaptive_suite_with_threads(&jobs, AdaptiveConfig::default(), threads);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            let (s, p) = match (s, p) {
                (Ok(s), Ok(p)) => (s, p),
                _ => panic!("job {i}: both modes must succeed on these scenarios"),
            };
            // The patch sequence is the observable of the adaptive layer:
            // identical records in identical order.
            assert_eq!(s.patch_log, p.patch_log, "job {i}: patch sequences differ");
            assert_eq!(s.enabled_sites, p.enabled_sites, "job {i}");
            assert_eq!(s.demoted_sites, p.demoted_sites, "job {i}");
            assert_eq!(s.quarantined_sites, p.quarantined_sites, "job {i}");
            // Bit-identical shipped artifacts.
            assert_eq!(
                s.program.module, p.program.module,
                "job {i}: final modules differ"
            );
            assert_eq!(
                s.program.predictions, p.program.predictions,
                "job {i}: predictions differ"
            );
            assert_eq!(s.program.provenance, p.program.provenance, "job {i}");
            // Per-segment measurements down to the float bits.
            assert_eq!(s.segments.len(), p.segments.len(), "job {i}");
            for (a, b) in s.segments.iter().zip(&p.segments) {
                assert_eq!(a.events, b.events, "job {i} segment {}", a.segment);
                assert_eq!(
                    a.misprediction_percent.to_bits(),
                    b.misprediction_percent.to_bits(),
                    "job {i} segment {}",
                    a.segment
                );
            }
        }
    }

    // The flapping job's backoff must have capped its attempts no matter
    // the thread count: every commit rolled back, quarantine engaged.
    let flap_result = serial[2].as_ref().unwrap();
    assert!(!flap_result.quarantined_sites.is_empty());
    assert!(
        !flap_result
            .patch_log
            .iter()
            .any(|r| r.outcome == brepl::core::PatchOutcome::Verified),
        "{:?}",
        flap_result.patch_log
    );
}
