//! Property-based testing of the IR layer: textual round-tripping,
//! verification of generated programs, and execution determinism.

mod common;

use brepl::ir::parse_module;
use brepl::sim::{Machine, RunConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn textual_format_round_trips(
        seed in any::<u64>(),
        diamonds in 1usize..5,
        trip in 1i64..50,
    ) {
        let module = common::random_loop_module(seed, diamonds, trip);
        let text = module.to_string();
        let parsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        prop_assert_eq!(&parsed, &module);
        // And the round-tripped module runs identically.
        let a = Machine::new(&module, RunConfig::default()).run("main", &[]).unwrap();
        let b = Machine::new(&parsed, RunConfig::default()).run("main", &[]).unwrap();
        prop_assert_eq!(a.result, b.result);
        prop_assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn execution_is_deterministic(
        seed in any::<u64>(),
        diamonds in 1usize..4,
        trip in 1i64..60,
    ) {
        let module = common::random_loop_module(seed, diamonds, trip);
        let a = Machine::new(&module, RunConfig::default()).run("main", &[]).unwrap();
        let b = Machine::new(&module, RunConfig::default()).run("main", &[]).unwrap();
        prop_assert_eq!(a.result, b.result);
        prop_assert_eq!(a.trace.len(), b.trace.len());
        let ev_a: Vec<_> = a.trace.iter().collect();
        let ev_b: Vec<_> = b.trace.iter().collect();
        prop_assert_eq!(ev_a, ev_b);
    }

    #[test]
    fn trace_serialization_round_trips(
        seed in any::<u64>(),
        diamonds in 1usize..4,
        trip in 1i64..80,
    ) {
        let module = common::random_loop_module(seed, diamonds, trip);
        let trace = Machine::new(&module, RunConfig::default())
            .run("main", &[])
            .unwrap()
            .trace;
        let bytes = trace.to_bytes();
        let back = brepl::trace::Trace::from_bytes(&bytes).expect("decodes");
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn generated_modules_always_verify(
        seed in any::<u64>(),
        diamonds in 0usize..6,
        trip in 0i64..40,
    ) {
        let module = common::random_loop_module(seed, diamonds, trip);
        prop_assert_eq!(module.verify(), Ok(()));
        prop_assert!(module.branch_count() >= 1);
    }
}
