//! Property-style testing of the IR layer: textual round-tripping,
//! verification of generated programs, and execution determinism.
//! Cases are driven by a deterministic xorshift generator (the workspace
//! builds with zero network access, so no external property-testing
//! framework).

mod common;

use brepl::ir::parse_module;
use brepl::sim::{Machine, RunConfig};
use common::Gen;

const CASES: u64 = 32;

/// Derives one case's parameters: an arbitrary module seed, diamonds in
/// `dmin..dmax` and trip in `tmin..tmax`.
fn case_params(
    salt: u64,
    case: u64,
    (dmin, dmax): (u64, u64),
    (tmin, tmax): (i64, i64),
) -> (u64, usize, i64) {
    let mut g = Gen::new(salt ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let seed = g.next();
    let diamonds = (dmin + g.below(dmax - dmin)) as usize;
    let trip = tmin + g.below((tmax - tmin) as u64) as i64;
    (seed, diamonds, trip)
}

#[test]
fn textual_format_round_trips() {
    for case in 0..CASES {
        let (seed, diamonds, trip) = case_params(0x7E87, case, (1, 5), (1, 50));
        let module = common::random_loop_module(seed, diamonds, trip);
        let text = module.to_string();
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        assert_eq!(&parsed, &module, "case {case}");
        // And the round-tripped module runs identically.
        let a = Machine::new(&module, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .unwrap();
        let b = Machine::new(&parsed, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .unwrap();
        assert_eq!(a.result, b.result, "case {case}");
        assert_eq!(a.steps, b.steps, "case {case}");
    }
}

#[test]
fn execution_is_deterministic() {
    for case in 0..CASES {
        let (seed, diamonds, trip) = case_params(0xDE7E, case, (1, 4), (1, 60));
        let module = common::random_loop_module(seed, diamonds, trip);
        let a = Machine::new(&module, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .unwrap();
        let b = Machine::new(&module, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .unwrap();
        assert_eq!(a.result, b.result, "case {case}");
        assert_eq!(a.trace.len(), b.trace.len(), "case {case}");
        let ev_a: Vec<_> = a.trace.iter().collect();
        let ev_b: Vec<_> = b.trace.iter().collect();
        assert_eq!(ev_a, ev_b, "case {case}");
    }
}

#[test]
fn trace_serialization_round_trips() {
    for case in 0..CASES {
        let (seed, diamonds, trip) = case_params(0x5E7A, case, (1, 4), (1, 80));
        let module = common::random_loop_module(seed, diamonds, trip);
        let trace = Machine::new(&module, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .unwrap()
            .trace;
        let bytes = trace.to_bytes();
        let back = brepl::trace::Trace::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, trace, "case {case}");
    }
}

#[test]
fn generated_modules_always_verify() {
    for case in 0..CASES {
        let (seed, diamonds, trip) = case_params(0x7E51, case, (0, 6), (0, 40));
        let module = common::random_loop_module(seed, diamonds, trip);
        assert_eq!(module.verify(), Ok(()), "case {case}");
        assert!(module.branch_count() >= 1, "case {case}");
    }
}
