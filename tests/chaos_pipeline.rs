//! End-to-end proof of the degradation paths (feature `chaos`): every
//! fault-injection point, activated on every workload, must be caught by
//! a gate and quarantined in default mode — yielding a shipped program
//! that re-validates clean — and must hard-fail with a typed error in
//! strict mode. Runs only with `cargo test --features chaos`.
#![cfg(feature = "chaos")]

use brepl::core::chaos::{ChaosConfig, ChaosPoint};
use brepl::pipeline::{run_pipeline, PipelineConfig, PipelineError, QuarantinedSite};
use brepl::workloads::{all_workloads, Scale, Workload};
use brepl_analysis::{check_history, validate_replication, Severity};

/// Runs `w` with `point` armed, scanning a few seeds until the injection
/// actually fires (candidate mutations are verified-effective, so the
/// first seed almost always works; the scan absorbs workloads where a
/// particular victim has nothing to corrupt). Panics if no seed fires.
fn run_with_point(
    w: &Workload,
    point: ChaosPoint,
    strict: bool,
) -> Result<(u64, brepl::pipeline::PipelineResult), (u64, PipelineError)> {
    for seed in 0..8u64 {
        let config = PipelineConfig {
            strict,
            chaos: Some(ChaosConfig { seed, point }),
            ..PipelineConfig::default()
        };
        match run_pipeline(&w.module, &w.args, &w.input, config) {
            Ok(result) => {
                if result.chaos_injection.is_some() {
                    return Ok((seed, result));
                }
                // Injection did not fire under this seed; try the next.
            }
            Err(e) => return Err((seed, e)),
        }
    }
    panic!(
        "{}: no seed in 0..8 made point {point} fire — the degradation path is unproven",
        w.name
    );
}

/// Default mode: the fault is quarantined, the victim named, and the
/// shipped program passes both static gates when re-checked from scratch.
#[test]
fn every_point_quarantines_and_revalidates_on_every_workload() {
    for w in all_workloads(Scale::Small) {
        for point in ChaosPoint::ALL {
            let (seed, result) = run_with_point(&w, point, false).unwrap_or_else(|(seed, e)| {
                panic!(
                    "{} / {point} (seed {seed}): default mode must not error: {e}",
                    w.name
                )
            });
            let injection = result.chaos_injection.as_ref().unwrap();
            assert_eq!(injection.point, point);
            let victim = injection.victim;
            assert!(
                result
                    .quarantined
                    .iter()
                    .any(|q: &QuarantinedSite| q.site == victim),
                "{} / {point} (seed {seed}): victim {victim} not quarantined; quarantined={:?}",
                w.name,
                result.quarantined
            );
            assert!(
                !result.replicated_sites.contains(&victim),
                "{} / {point}: quarantined victim still shipped",
                w.name
            );
            // Clean re-validation of the *shipped* program, from scratch:
            // zero error-severity diagnostics from either gate.
            let p = &result.program;
            let diags = validate_replication(&w.module, &p.module, &p.replica_map, &p.predictions);
            assert!(
                diags.iter().all(|d| d.severity() != Severity::Error),
                "{} / {point} (seed {seed}): shipped program fails validation: {diags:?}",
                w.name
            );
            // The history gate needs the shipped plan's tables; the
            // pipeline re-proved it on the final round (gates were on and
            // the run returned Ok), so here just re-check the empty-spec
            // invariant holds for quarantined sites.
            let spec = brepl_analysis::HistorySpec::new();
            let hdiags = check_history(&p.module, &p.provenance, &spec, &p.predictions);
            assert!(
                hdiags.iter().all(|d| d.severity() != Severity::Error),
                "{} / {point}: empty-spec history check errored: {hdiags:?}",
                w.name
            );
            assert!(
                p.module.verify().is_ok(),
                "{} / {point}: shipped module invalid",
                w.name
            );
            // Every quarantine record names a reason.
            for q in &result.quarantined {
                assert!(!q.reason.is_empty());
            }
        }
    }
}

/// Strict mode: the same faults abort with a typed error — never a panic,
/// never a silently shipped program.
#[test]
fn every_point_hard_fails_in_strict_mode() {
    // One representative workload keeps this cheap; the `chaos` bench bin
    // covers the full workload × point matrix in both modes.
    let w = brepl::workloads::workload_by_name("compress", Scale::Small).unwrap();
    for point in ChaosPoint::ALL {
        match run_with_point(&w, point, true) {
            Err((_, e)) => {
                let typed = matches!(
                    e,
                    PipelineError::Validation(_)
                        | PipelineError::History(_)
                        | PipelineError::Trace(_)
                        | PipelineError::Replicate(_)
                );
                assert!(typed, "{point}: strict failure has the wrong type: {e}");
            }
            Ok((seed, result)) => panic!(
                "{point} (seed {seed}): strict mode returned Ok with injection {:?}",
                result.chaos_injection
            ),
        }
    }
}

/// The forge point proper (not its truncation fallback): a module with a
/// proved-monostatic guard and a machine-worthy alternating branch. The
/// forged event contradicts the proof, so the classification gate fires
/// `BR013` naming the guard — while the witness validator and history
/// checker (`BR001`–`BR012`) stay blind, because the forged trace judges
/// the gate but never steers replication.
#[test]
fn forged_profile_fires_br013_while_other_gates_stay_blind() {
    use brepl_analysis::DiagCode;
    use brepl_ir::{FunctionBuilder, Module, Operand};

    let mut b = FunctionBuilder::new("main", 0);
    let i = b.reg();
    let acc = b.reg();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    let head = b.new_block();
    let even = b.new_block();
    let odd = b.new_block();
    let guard_t = b.new_block();
    let latch = b.new_block();
    let exit = b.new_block();
    b.jmp(head);
    b.switch_to(head);
    let r = b.reg();
    b.rem(r, i.into(), Operand::imm(2));
    let c = b.eq(r.into(), Operand::imm(0));
    b.br(c, even, odd); // site 0: alternating — ships a machine
    b.switch_to(even);
    b.add(acc, acc.into(), Operand::imm(3));
    b.jmp(latch);
    b.switch_to(odd);
    b.add(acc, acc.into(), Operand::imm(5));
    b.jmp(latch);
    b.switch_to(latch);
    let one = b.reg();
    b.const_int(one, 1);
    let g = b.gt(one.into(), Operand::imm(0));
    b.br(g, guard_t, exit); // site 1: proved always-taken
    b.switch_to(guard_t);
    b.add(i, i.into(), Operand::imm(1));
    let c2 = b.lt(i.into(), Operand::imm(200));
    b.br(c2, head, exit); // site 2: loop back edge
    b.switch_to(exit);
    b.out(acc.into());
    b.ret(Some(acc.into()));
    let mut m = Module::new();
    m.push_function(b.finish());
    m.renumber_branches();

    let chaos = Some(ChaosConfig {
        seed: 0,
        point: ChaosPoint::ForgeTraceEvent,
    });
    let result = run_pipeline(
        &m,
        &[],
        &[],
        PipelineConfig {
            chaos,
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let inj = result.chaos_injection.as_ref().expect("forge must fire");
    assert!(
        inj.description.contains("flipped trace event"),
        "expected the forge proper, got the fallback: {}",
        inj.description
    );
    // BR013 at the proved victim, attributed by the classify gate…
    let q = result
        .quarantined
        .iter()
        .find(|q| q.site == inj.victim)
        .expect("forged victim must be quarantined");
    assert_eq!(q.gate.name(), "classify");
    assert!(
        q.codes.contains(&DiagCode::ProfileProofConflict),
        "victim codes: {:?}",
        q.codes
    );
    // …and the classify gate *alone*: BR001–BR012 saw a clean program.
    assert!(
        result
            .quarantined
            .iter()
            .all(|q| q.gate.name() == "classify"),
        "other gates fired: {:?}",
        result.quarantined
    );
    // The untrusted profile shipped nothing.
    assert!(result.replicated_sites.is_empty());

    // Strict mode: the same forge is a hard trace error naming BR013.
    match run_pipeline(
        &m,
        &[],
        &[],
        PipelineConfig {
            strict: true,
            chaos,
            ..PipelineConfig::default()
        },
    ) {
        Err(PipelineError::Trace(msg)) => assert!(msg.contains("BR013"), "{msg}"),
        other => panic!("strict forge must be a trace error, got {other:?}"),
    }
}

/// The static-profile forge proper (not its truncation fallback): the
/// chaos engine overwrites one proof-promoted exact estimate with a
/// rational that contradicts the measured counts, leaving the trace,
/// module, witness and machine tables all honest. Only the
/// estimate-vs-measured drift gate sees the profile, so `BR019` must
/// catch the forgery at the victim — and `BR001`–`BR018` must all stay
/// blind, proving the drift gate adds real detection surface instead of
/// re-flagging what the older gates already catch.
#[test]
fn forged_static_profile_fires_br019_while_br001_to_br018_stay_blind() {
    use brepl_analysis::DiagCode;
    use brepl_ir::{FunctionBuilder, Module, Operand};

    // Same shape as the BR013 forge test: an alternating machine-worthy
    // branch (site 0), a proved-always-taken guard (site 1, the exact
    // estimate the forge can contradict), and a loop back edge (site 2).
    let mut b = FunctionBuilder::new("main", 0);
    let i = b.reg();
    let acc = b.reg();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    let head = b.new_block();
    let even = b.new_block();
    let odd = b.new_block();
    let guard_t = b.new_block();
    let latch = b.new_block();
    let exit = b.new_block();
    b.jmp(head);
    b.switch_to(head);
    let r = b.reg();
    b.rem(r, i.into(), Operand::imm(2));
    let c = b.eq(r.into(), Operand::imm(0));
    b.br(c, even, odd);
    b.switch_to(even);
    b.add(acc, acc.into(), Operand::imm(3));
    b.jmp(latch);
    b.switch_to(odd);
    b.add(acc, acc.into(), Operand::imm(5));
    b.jmp(latch);
    b.switch_to(latch);
    let one = b.reg();
    b.const_int(one, 1);
    let g = b.gt(one.into(), Operand::imm(0));
    b.br(g, guard_t, exit);
    b.switch_to(guard_t);
    b.add(i, i.into(), Operand::imm(1));
    let c2 = b.lt(i.into(), Operand::imm(200));
    b.br(c2, head, exit);
    b.switch_to(exit);
    b.out(acc.into());
    b.ret(Some(acc.into()));
    let mut m = Module::new();
    m.push_function(b.finish());
    m.renumber_branches();

    let chaos = Some(ChaosConfig {
        seed: 0,
        point: ChaosPoint::ForgeStaticProfile,
    });
    let result = run_pipeline(
        &m,
        &[],
        &[],
        PipelineConfig {
            chaos,
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let inj = result.chaos_injection.as_ref().expect("forge must fire");
    assert!(
        inj.description.contains("overwrote site"),
        "expected the estimate forge proper, got the fallback: {}",
        inj.description
    );
    // BR019 at the forged victim, attributed by the drift gate alone…
    let q = result
        .quarantined
        .iter()
        .find(|q| q.site == inj.victim)
        .expect("forged victim must be quarantined");
    assert_eq!(q.gate.name(), "estimate");
    assert_eq!(
        q.codes,
        vec![DiagCode::EstimateDriftConflict],
        "BR019 and only BR019 condemns the victim"
    );
    // …and nothing else fired: the trace, witness and machine tables
    // were honest, so BR001–BR018 saw a clean program.
    assert!(
        result
            .quarantined
            .iter()
            .all(|q| q.gate.name() == "estimate"),
        "other gates fired: {:?}",
        result.quarantined
    );
    // Per-site quarantine: the honest alternating machine still ships.
    assert!(
        !result.replicated_sites.contains(&inj.victim),
        "forged victim shipped"
    );

    // Strict mode: the same forgery is a hard trace error naming BR019.
    match run_pipeline(
        &m,
        &[],
        &[],
        PipelineConfig {
            strict: true,
            chaos,
            ..PipelineConfig::default()
        },
    ) {
        Err(PipelineError::Trace(msg)) => assert!(msg.contains("BR019"), "{msg}"),
        other => panic!("strict estimate forge must be a trace error, got {other:?}"),
    }
}

/// Incremental gate re-proving is invisible: across the full workload ×
/// chaos-point matrix, a pipeline run with the round-to-round gate cache
/// (the default) and a from-scratch run (`incremental: false`) must agree
/// on every observable — quarantine records (sites, gates, codes, rounds,
/// reasons), the replicated-site set, and the shipped program bit for
/// bit. Chaos faults are the hard case: quarantine drops change exactly
/// one function between rounds, so the cache replays every other
/// function's diagnostics while the dropped one re-proves.
#[test]
fn incremental_reproving_matches_from_scratch_across_chaos_matrix() {
    for w in all_workloads(Scale::Small) {
        for point in ChaosPoint::ALL {
            for seed in 0..8u64 {
                let config_at = |incremental: bool| PipelineConfig {
                    incremental,
                    chaos: Some(ChaosConfig { seed, point }),
                    ..PipelineConfig::default()
                };
                let cached = run_pipeline(&w.module, &w.args, &w.input, config_at(true));
                let scratch = run_pipeline(&w.module, &w.args, &w.input, config_at(false));
                match (cached, scratch) {
                    (Ok(a), Ok(b)) => {
                        let ctx = format!("{} / {point} (seed {seed})", w.name);
                        assert_eq!(a.quarantined, b.quarantined, "{ctx}: quarantine records");
                        assert_eq!(a.replicated_sites, b.replicated_sites, "{ctx}: sites");
                        assert_eq!(a.program.module, b.program.module, "{ctx}: module");
                        assert_eq!(a.program.provenance, b.program.provenance, "{ctx}");
                        assert_eq!(a.program.predictions, b.program.predictions, "{ctx}");
                        assert_eq!(
                            a.replicated_misprediction_percent, b.replicated_misprediction_percent,
                            "{ctx}"
                        );
                        let fired = a.chaos_injection.is_some();
                        if fired {
                            // One firing seed per cell is enough coverage.
                            break;
                        }
                    }
                    (a, b) => panic!(
                        "{} / {point} (seed {seed}): cached and scratch runs must both \
                         succeed in default mode: {:?} vs {:?}",
                        w.name,
                        a.err().map(|e| e.to_string()),
                        b.err().map(|e| e.to_string()),
                    ),
                }
            }
        }
    }
}

/// S3: quarantine is deterministic across thread counts — serial and
/// parallel runs of a chaos-faulted pipeline produce the identical
/// quarantined set and bit-identical shipped program.
#[test]
fn quarantine_is_deterministic_across_thread_counts() {
    let w = brepl::workloads::workload_by_name("predict", Scale::Small).unwrap();
    let run_at = |threads: &str| {
        // The engine reads BREPL_THREADS per par_map call; results are
        // index-merged so any value must give bit-identical output.
        std::env::set_var("BREPL_THREADS", threads);
        let config = PipelineConfig {
            chaos: Some(ChaosConfig {
                seed: 3,
                point: ChaosPoint::RetargetReplicaEdge,
            }),
            ..PipelineConfig::default()
        };
        let r = run_pipeline(&w.module, &w.args, &w.input, config).unwrap();
        std::env::remove_var("BREPL_THREADS");
        r
    };
    let serial = run_at("1");
    let parallel = run_at("4");
    assert_eq!(serial.quarantined, parallel.quarantined);
    assert_eq!(serial.replicated_sites, parallel.replicated_sites);
    assert_eq!(serial.program.module, parallel.program.module);
    assert_eq!(
        serial.program.provenance, parallel.program.provenance,
        "provenance must not depend on scheduling"
    );
    assert_eq!(
        serial.replicated_misprediction_percent,
        parallel.replicated_misprediction_percent
    );
    // The injection itself is part of the determinism contract.
    let (a, b) = (
        serial
            .chaos_injection
            .as_ref()
            .map(|i| (i.point, i.victim, i.description.clone())),
        parallel
            .chaos_injection
            .as_ref()
            .map(|i| (i.point, i.victim, i.description.clone())),
    );
    assert_eq!(a, b);
}

/// The inject-drift point proper: the engine forges the patcher's view
/// of one post-planning segment of a *stable* distribution, provoking a
/// spurious patch that the BR001–BR012 re-proof rightly accepts (the
/// patched program is well-formed) — only the verification window on
/// the next honest segment can tell the drift never happened. It must
/// roll the transaction back byte-identically and fire `BR023`, while
/// every other gate stays blind.
#[test]
fn inject_drift_is_caught_by_the_verification_window_alone() {
    use brepl::core::PatchOutcome;
    use brepl::pipeline::{run_pipeline_adaptive, AdaptiveConfig};
    use brepl::workloads::kmp;
    use brepl_analysis::DiagCode;

    let module = kmp::drift_module();
    // A stable ¾-bias tape: the forged drift is the only drift.
    let segments: Vec<_> = (0..3u64)
        .map(|k| kmp::biased_text(2000, 40 + k, 3, 4))
        .collect();
    let honest = run_pipeline_adaptive(&module, &[], &segments, AdaptiveConfig::default()).unwrap();
    assert!(honest.patch_log.is_empty(), "{:?}", honest.patch_log);

    let mut config = AdaptiveConfig::default();
    config.pipeline.chaos = Some(ChaosConfig {
        seed: 0,
        point: ChaosPoint::InjectDrift,
    });
    let r = run_pipeline_adaptive(&module, &[], &segments, config).unwrap();
    let inj = r.chaos_injection.as_ref().expect("inject-drift must fire");
    assert_eq!(inj.point, ChaosPoint::InjectDrift);
    assert!(
        inj.description.contains("forged input-distribution shift"),
        "{}",
        inj.description
    );

    // The spurious patch committed off the forged counters and rolled
    // back on the next honest segment; nothing survived.
    assert!(
        r.patch_log
            .iter()
            .any(|rec| rec.outcome == PatchOutcome::RolledBack),
        "{:?}",
        r.patch_log
    );
    assert!(
        !r.patch_log
            .iter()
            .any(|rec| rec.outcome == PatchOutcome::Verified),
        "{:?}",
        r.patch_log
    );

    // BR023 and only BR023: the planning gates saw exactly what the
    // honest run saw, and the final from-scratch re-validation passed
    // (the run returned Ok with the gates on).
    assert!(!r.respec_diags.is_empty());
    assert!(
        r.respec_diags
            .iter()
            .all(|d| d.code == DiagCode::PatchRejected),
        "{:?}",
        r.respec_diags
    );
    assert_eq!(r.plan.quarantined, honest.plan.quarantined);

    // Rollback restored the byte-identical pre-patch program.
    assert_eq!(
        r.program.module.fingerprint(),
        honest.program.module.fingerprint()
    );
    assert_eq!(r.program.predictions, honest.program.predictions);
}

/// The corrupt-patch point proper: a legitimate drift patch commits —
/// the BR001–BR012 re-proof ran on honest bits — and the engine then
/// flips the committed pins post-gate. The shipped bits lie; only the
/// per-member verification window is left to notice the corrupted
/// member's miss rate failed to improve, roll the whole transaction
/// back, and fire `BR023`.
#[test]
fn corrupt_patch_is_caught_by_the_verification_window_alone() {
    use brepl::core::PatchOutcome;
    use brepl::pipeline::{run_pipeline_adaptive, AdaptiveConfig};
    use brepl::workloads::kmp;
    use brepl_analysis::DiagCode;

    let module = kmp::drift_module();
    // The kmp swap scenario: bias flips ¼ → ¾ after planning, so a
    // genuine swap transaction commits at segment 1.
    let segments = vec![
        kmp::biased_text(2000, 7, 1, 4),
        kmp::biased_text(2000, 8, 3, 4),
        kmp::biased_text(2000, 9, 3, 4),
    ];
    let honest = run_pipeline_adaptive(&module, &[], &segments, AdaptiveConfig::default()).unwrap();
    assert!(
        honest
            .patch_log
            .iter()
            .all(|rec| rec.outcome == PatchOutcome::Verified),
        "the honest swaps must survive: {:?}",
        honest.patch_log
    );

    let mut config = AdaptiveConfig::default();
    config.pipeline.chaos = Some(ChaosConfig {
        seed: 0,
        point: ChaosPoint::CorruptPatch,
    });
    let r = run_pipeline_adaptive(&module, &[], &segments, config).unwrap();
    let inj = r.chaos_injection.as_ref().expect("corrupt-patch must fire");
    assert_eq!(inj.point, ChaosPoint::CorruptPatch);
    assert!(
        inj.description.contains("after the re-proof accepted it"),
        "{}",
        inj.description
    );

    // The same transaction that verified clean in the honest run now
    // rolls back wholesale: the corrupted member cannot hide behind its
    // siblings under per-member verification.
    assert!(
        r.patch_log
            .iter()
            .any(|rec| rec.outcome == PatchOutcome::RolledBack && rec.site == inj.victim),
        "{:?}",
        r.patch_log
    );
    assert!(
        !r.patch_log
            .iter()
            .any(|rec| rec.outcome == PatchOutcome::Verified),
        "{:?}",
        r.patch_log
    );
    let codes: Vec<_> = r.respec_diags.iter().map(|d| d.code).collect();
    assert!(codes.contains(&DiagCode::PatchRejected), "{codes:?}");
    assert!(
        !codes.contains(&DiagCode::FlappingSite),
        "one rollback is not flapping: {codes:?}"
    );
    assert_eq!(r.plan.quarantined, honest.plan.quarantined);

    // Rollback restored the byte-identical never-patched plan (backoff
    // then blocks a re-patch within the remaining segments).
    let baseline =
        run_pipeline_adaptive(&module, &[], &segments[..1], AdaptiveConfig::default()).unwrap();
    assert_eq!(
        r.program.module.fingerprint(),
        baseline.program.module.fingerprint()
    );
}
