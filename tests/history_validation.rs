//! Mutation testing of the witness-independent history checker: starting
//! from a genuine replicated program (loop replication of an alternating
//! branch by a two-state flip-flop), each test injects one class of
//! corruption and asserts the documented diagnostic:
//!
//! | mutation                                   | code                    |
//! |--------------------------------------------|-------------------------|
//! | flip a pin AND forge the witness to match  | BR009 (BR006 is blind)  |
//! | merge two state copies onto one block      | BR010                   |
//! | add an unreachable machine state           | BR011 (warning only)    |
//! | malform the machine table                  | BR012                   |
//!
//! The first row is the reason the checker exists: a transform bug that
//! corrupts the code and its own witness *consistently* passes every
//! BR001–BR008 check, because the witness validator trusts the replica
//! map that `apply_plan` itself emits. The history checker re-derives the
//! per-copy predictor states from the replicated control flow and the
//! planned machine table alone, so the same corruption is caught.

use brepl::core::replicate::{apply_plan, BranchMachine, ReplicatedProgram, ReplicationPlan};
use brepl::core::{HistPattern, MachineState, StateMachine};
use brepl::ir::{BlockId, BranchId, FunctionBuilder, Module, Operand, Term, Value};
use brepl::sim::{Machine as Sim, RunConfig};
use brepl_analysis::{
    check_history, has_errors, validate_replication, AnalysisDiag, DiagCode, HistorySpec, Severity,
    TableState,
};

/// Loop over i in 0..100 with an alternating branch and an exit branch.
fn alternating_module() -> Module {
    let mut b = FunctionBuilder::new("main", 1);
    let n = b.param(0);
    let i = b.reg();
    let acc = b.reg();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    let head = b.new_block();
    let even = b.new_block();
    let odd = b.new_block();
    let latch = b.new_block();
    let exit = b.new_block();
    b.jmp(head);
    b.switch_to(head);
    let r = b.reg();
    b.rem(r, i.into(), Operand::imm(2));
    let c = b.eq(r.into(), Operand::imm(0));
    b.br(c, even, odd);
    b.switch_to(even);
    b.add(acc, acc.into(), Operand::imm(3));
    b.jmp(latch);
    b.switch_to(odd);
    b.add(acc, acc.into(), Operand::imm(5));
    b.jmp(latch);
    b.switch_to(latch);
    b.add(i, i.into(), Operand::imm(1));
    let c2 = b.lt(i.into(), n.into());
    b.br(c2, head, exit);
    b.switch_to(exit);
    b.out(acc.into());
    b.ret(Some(acc.into()));
    let mut m = Module::new();
    m.push_function(b.finish());
    m
}

fn flip_flop() -> StateMachine {
    StateMachine::from_states(
        vec![
            MachineState {
                pattern: HistPattern::parse("0").unwrap(),
                predict: true,
                on_taken: 1,
                on_not_taken: 0,
            },
            MachineState {
                pattern: HistPattern::parse("1").unwrap(),
                predict: false,
                on_taken: 1,
                on_not_taken: 0,
            },
        ],
        0,
    )
}

/// A faithful replication of the alternating module plus the plan it came
/// from; validates clean under both checkers.
fn replicated() -> (Module, ReplicationPlan, ReplicatedProgram) {
    let m = alternating_module();
    let stats = Sim::new(&m, RunConfig::default())
        .unwrap()
        .run("main", &[Value::Int(100)])
        .unwrap()
        .trace
        .stats();
    let mut plan = ReplicationPlan::new();
    plan.assign(BranchId(0), BranchMachine::Loop(flip_flop()));
    let program = apply_plan(&m, &plan, &stats).unwrap();
    (m, plan, program)
}

fn history(program: &ReplicatedProgram, spec: &HistorySpec) -> Vec<AnalysisDiag> {
    check_history(
        &program.module,
        &program.provenance,
        spec,
        &program.predictions,
    )
}

fn codes(diags: &[AnalysisDiag]) -> Vec<DiagCode> {
    diags.iter().map(|d| d.code).collect()
}

/// The replicas of original site 0, as `(block, new site)` pairs.
fn site0_replicas(program: &ReplicatedProgram) -> Vec<(BlockId, BranchId)> {
    let fid = program.module.function_by_name("main").unwrap();
    program
        .module
        .function(fid)
        .iter_blocks()
        .filter_map(|(bid, block)| {
            let site = block.term.branch_site()?;
            (program.provenance[site.index()] == BranchId(0)).then_some((bid, site))
        })
        .collect()
}

#[test]
fn faithful_replication_passes_both_checkers() {
    let (m, plan, program) = replicated();
    let witness = validate_replication(
        &m,
        &program.module,
        &program.replica_map,
        &program.predictions,
    );
    assert!(!has_errors(&witness), "{witness:?}");
    let diags = history(&program, &plan.history_spec());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn consistently_forged_pin_is_invisible_to_witness_but_caught_as_br009() {
    let (m, plan, mut program) = replicated();
    // Flip one machine-pinned prediction AND forge the witness to agree —
    // exactly what a transform bug corrupting both its output and its own
    // bookkeeping produces.
    let fid = program.module.function_by_name("main").unwrap();
    let (bid, site) = site0_replicas(&program)[0];
    let old = program.predictions.get(site);
    program.predictions.set(site, !old);
    program.replica_map.functions[fid.index()].machine_predictions[bid.index()] = Some(!old);

    let witness = validate_replication(
        &m,
        &program.module,
        &program.replica_map,
        &program.predictions,
    );
    assert!(
        !codes(&witness).contains(&DiagCode::PredictionMismatch),
        "BR006 must be blind to a consistently forged witness, got {witness:?}"
    );
    assert!(
        !has_errors(&witness),
        "the witness validator must pass the consistent corruption entirely, got {witness:?}"
    );

    let diags = history(&program, &plan.history_spec());
    assert!(
        codes(&diags).contains(&DiagCode::HistoryPredictionViolation),
        "expected BR009 from the witness-independent checker, got {diags:?}"
    );
}

#[test]
fn merged_state_copies_caught_as_br010() {
    let (_, plan, mut program) = replicated();
    // Route every edge into one state's copy of the controlled branch to
    // the other state's copy: the surviving copy is now reachable in both
    // machine states, whose predictions conflict.
    let replicas = site0_replicas(&program);
    assert!(
        replicas.len() >= 2,
        "flip-flop replication makes two copies"
    );
    let (keep, _) = replicas[0];
    let (drop, _) = replicas[1];
    let fid = program.module.function_by_name("main").unwrap();
    for block in &mut program.module.function_mut(fid).blocks {
        match &mut block.term {
            Term::Br { then_, else_, .. } => {
                if *then_ == drop {
                    *then_ = keep;
                }
                if *else_ == drop {
                    *else_ = keep;
                }
            }
            Term::Jmp { target } => {
                if *target == drop {
                    *target = keep;
                }
            }
            Term::Ret { .. } => {}
        }
    }
    let diags = history(&program, &plan.history_spec());
    assert!(
        codes(&diags).contains(&DiagCode::HistoryConflict),
        "expected BR010, got {diags:?}"
    );
}

#[test]
fn unreachable_machine_state_is_br011_warning_only() {
    let (_, plan, program) = replicated();
    // Grow the planned table by a state no transition ever enters.
    let mut spec = plan.history_spec();
    let table = spec.machines.get_mut(&BranchId(0)).unwrap();
    let dead = table.states.len();
    table.states.push(TableState {
        predict: true,
        on_taken: dead,
        on_not_taken: dead,
    });
    let diags = history(&program, &spec);
    let missing: Vec<_> = diags
        .iter()
        .filter(|d| d.code == DiagCode::UnreachableMachineState)
        .collect();
    assert!(!missing.is_empty(), "expected BR011, got {diags:?}");
    for d in &missing {
        assert_eq!(d.severity(), Severity::Warning);
    }
    assert!(
        !has_errors(&diags),
        "an unreached state must never be an error: {diags:?}"
    );
}

#[test]
fn malformed_machine_table_caught_as_br012() {
    let (_, plan, program) = replicated();
    let mut spec = plan.history_spec();
    spec.machines.get_mut(&BranchId(0)).unwrap().initial = 99;
    let diags = history(&program, &spec);
    assert!(
        codes(&diags).contains(&DiagCode::ProductFixpointFailure),
        "expected BR012 for out-of-range initial state, got {diags:?}"
    );
    assert!(has_errors(&diags), "BR012 must be error severity");

    let mut empty = plan.history_spec();
    empty.machines.get_mut(&BranchId(0)).unwrap().states.clear();
    let diags = history(&program, &empty);
    assert!(
        codes(&diags).contains(&DiagCode::ProductFixpointFailure),
        "expected BR012 for an empty table, got {diags:?}"
    );
}
