//! Shape-regression tests: the qualitative relationships the paper argues
//! for must hold on the suite, whatever the absolute numbers do. These are
//! the guarantees EXPERIMENTS.md reports.

use brepl::predict::dynamic::{LastDirection, TwoBitCounters, TwoLevel};
use brepl::predict::semistatic::{combine_best, correlation_report, loop_report, profile_report};
use brepl::predict::simulate_dynamic;
use brepl::trace::Trace;
use brepl::workloads::{all_workloads, Scale};

fn suite_traces() -> Vec<(&'static str, Trace)> {
    all_workloads(Scale::Small)
        .into_iter()
        .map(|w| {
            let t = w.run().expect("workload runs").trace;
            (w.name, t)
        })
        .collect()
}

#[test]
fn paper_orderings_hold_per_program() {
    for (name, t) in suite_traces() {
        let profile = profile_report(&t).mispredictions();
        let corr1 = correlation_report(&t, 1).mispredictions();
        let loop1 = loop_report(&t, 1).mispredictions();
        let loop9 = loop_report(&t, 9).mispredictions();
        let lc = combine_best(&correlation_report(&t, 1), &loop_report(&t, 9)).mispredictions();

        // Ideal history tables refine profile prediction.
        assert!(
            corr1 <= profile,
            "{name}: corr1 {corr1} > profile {profile}"
        );
        assert!(
            loop1 <= profile,
            "{name}: loop1 {loop1} > profile {profile}"
        );
        assert!(loop9 <= loop1, "{name}: loop9 {loop9} > loop1 {loop1}");
        // The combination dominates both components.
        assert!(lc <= corr1 && lc <= loop9, "{name}: combination not best");
    }
}

#[test]
fn counters_beat_last_direction_on_average() {
    let traces = suite_traces();
    let mut last = 0.0;
    let mut counter = 0.0;
    for (_, t) in &traces {
        last += simulate_dynamic(&mut LastDirection::new(), t).misprediction_percent();
        counter += simulate_dynamic(&mut TwoBitCounters::new(), t).misprediction_percent();
    }
    assert!(
        counter < last,
        "2-bit counters should beat last-direction: {counter:.2} vs {last:.2}"
    );
}

#[test]
fn history_schemes_reach_dynamic_territory() {
    // The paper's core quantitative claim: semi-static prediction with
    // history "comparable to dynamic branch prediction schemes". Averaged
    // over the suite, loop-correlation must land at or below the two-level
    // predictor's rate plus a small slack, and clearly below profile.
    let traces = suite_traces();
    let mut two_level = 0.0;
    let mut profile = 0.0;
    let mut lc = 0.0;
    for (_, t) in &traces {
        two_level += simulate_dynamic(&mut TwoLevel::paper_4k(), t).misprediction_percent();
        profile += profile_report(t).misprediction_percent();
        lc += combine_best(&correlation_report(t, 1), &loop_report(t, 9)).misprediction_percent();
    }
    let n = traces.len() as f64;
    let (two_level, profile, lc) = (two_level / n, profile / n, lc / n);
    assert!(
        lc <= two_level + 1.0,
        "loop-correlation {lc:.2}% should be comparable to two-level {two_level:.2}%"
    );
    assert!(
        lc < profile * 0.8,
        "loop-correlation {lc:.2}% should clearly beat profile {profile:.2}%"
    );
}

#[test]
fn replicated_modules_round_trip_textually() {
    use brepl::ir::parse_module;
    use brepl::pipeline::{run_pipeline, PipelineConfig};

    let w = brepl::workloads::workload_by_name("doduc", Scale::Small).unwrap();
    let r = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default()).unwrap();
    let text = r.program.module.to_string();
    let parsed = parse_module(&text).expect("replicated program parses back");
    assert_eq!(parsed, r.program.module);
}
