//! Differential testing of the fused single-pass trace analytics
//! ([`brepl::predict::FusedAnalytics`]) against the per-stage entry
//! points it replaces: every product of the fused traversal must equal —
//! `==` on the respective types, not approximately — what the staged
//! functions compute, on the real benchmark suite and on random fuzz
//! programs.

mod common;

use brepl::predict::dynamic::{LastDirection, TwoBitCounters, TwoLevel};
use brepl::predict::semistatic::{loop_report, profile_report};
use brepl::predict::{simulate_dynamic, FusedAnalytics, HistoryKind, PatternTableSet};
use brepl::trace::Trace;
use brepl::workloads::{all_workloads, Scale};
use common::Gen;

/// Asserts every fused product equals its per-stage counterpart on one
/// trace, and that the aggregated loop tables reproduce direct builds for
/// every history length Table 2 prints.
fn assert_fused_matches(trace: &Trace, what: &str) {
    let fused = FusedAnalytics::run(trace);
    assert_eq!(fused.stats, trace.stats(), "{what}: stats");
    assert_eq!(
        fused.local9,
        PatternTableSet::build(trace, HistoryKind::Local, 9),
        "{what}: local9"
    );
    assert_eq!(
        fused.global1,
        PatternTableSet::build(trace, HistoryKind::Global, 1),
        "{what}: global1"
    );
    assert_eq!(
        fused.last_direction,
        simulate_dynamic(&mut LastDirection::new(), trace),
        "{what}: last direction"
    );
    assert_eq!(
        fused.two_bit,
        simulate_dynamic(&mut TwoBitCounters::new(), trace),
        "{what}: two-bit"
    );
    assert_eq!(
        fused.two_level_4k,
        simulate_dynamic(&mut TwoLevel::paper_4k(), trace),
        "{what}: two-level 4K"
    );
    assert_eq!(fused.profile, profile_report(trace), "{what}: profile");
    for bits in 1..=9u32 {
        assert_eq!(
            fused.local9.aggregated(bits).report(),
            loop_report(trace, bits),
            "{what}: {bits}-bit loop report"
        );
    }
}

/// The fused pass agrees with the staged functions on every real
/// workload's profiling trace — the exact inputs table1/table2 feed it.
#[test]
fn fused_matches_staged_on_all_small_workloads() {
    for w in all_workloads(Scale::Small) {
        let outcome = w.run().expect("workload runs clean");
        assert_fused_matches(&outcome.trace, w.name);
    }
}

/// The fused pass agrees on random loop programs: structurally diverse
/// traces (nested diamonds, varying trip counts) the handwritten suite
/// does not cover.
#[test]
fn fused_matches_staged_on_fuzz_modules() {
    let mut g = Gen::new(0x00F0_5EDA_11A1_u64);
    for i in 0..12u64 {
        let seed = g.next();
        let diamonds = (i % 4 + 1) as usize;
        let trip = 30 + (g.below(50) as i64);
        let m = common::random_loop_module(seed, diamonds, trip);
        let run = brepl::sim::Machine::new(&m, brepl::sim::RunConfig::default())
            .expect("machine constructs")
            .run("main", &[])
            .expect("fuzz module runs clean");
        assert_fused_matches(&run.trace, &format!("fuzz seed={seed}"));
    }
}
