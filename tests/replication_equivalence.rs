//! Property-style testing of the replication transform: for random
//! branch-rich loop programs, applying the full selection must preserve
//! semantics exactly (result, output tape, step count, per-site branch
//! histogram) and must never make the static prediction worse.
//! Cases are driven by a deterministic xorshift generator (the workspace
//! builds with zero network access, so no external property-testing
//! framework).

mod common;

use brepl::core::{apply_plan, check_equivalence, select_strategies};
use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl::sim::{Machine, RunConfig};
use common::Gen;

const CASES: u64 = 24;

/// Derives one case's parameters: an arbitrary module seed, diamonds in
/// `dmin..dmax` and trip in `tmin..tmax`.
fn case_params(
    salt: u64,
    case: u64,
    (dmin, dmax): (u64, u64),
    (tmin, tmax): (i64, i64),
) -> (u64, usize, i64) {
    let mut g = Gen::new(salt ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let seed = g.next();
    let diamonds = (dmin + g.below(dmax - dmin)) as usize;
    let trip = tmin + g.below((tmax - tmin) as u64) as i64;
    (seed, diamonds, trip)
}

#[test]
fn replication_preserves_semantics() {
    for case in 0..CASES {
        let (seed, diamonds, trip) = case_params(0x5E3A, case, (1, 4), (8, 120));
        let module = common::random_loop_module(seed, diamonds, trip);
        let trace = Machine::new(&module, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .expect("generated programs terminate")
            .trace;
        if trace.len() <= 10 {
            continue;
        }

        for max_states in [2usize, 4] {
            let selection = select_strategies(&module, &trace, max_states);
            let plan = selection.to_plan();
            let program = apply_plan(&module, &plan, &trace.stats()).expect("replication applies");
            check_equivalence(&module, &program, "main", &[], &[])
                .expect("replicated program is equivalent");
        }
    }
}

#[test]
fn pipeline_never_degrades_prediction() {
    for case in 0..CASES {
        let (seed, diamonds, trip) = case_params(0xDE62, case, (1, 4), (8, 100));
        let module = common::random_loop_module(seed, diamonds, trip);
        let config = PipelineConfig {
            max_states: 3,
            ..PipelineConfig::default()
        };
        let result = run_pipeline(&module, &[], &[], config).expect("pipeline runs");
        assert!(
            result.replicated_misprediction_percent <= result.profile_misprediction_percent + 1e-9,
            "case {case}"
        );
        assert!(result.size_growth >= 1.0, "case {case}");
    }
}

#[test]
fn selection_misses_bounded_by_profile() {
    for case in 0..CASES {
        let (seed, diamonds, trip) = case_params(0xB0D5, case, (1, 5), (8, 150));
        let module = common::random_loop_module(seed, diamonds, trip);
        let trace = Machine::new(&module, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .expect("terminates")
            .trace;
        if trace.is_empty() {
            continue;
        }
        let selection = select_strategies(&module, &trace, 4);
        assert!(
            selection.total_misses() <= selection.profile_misses(),
            "case {case}"
        );
        // Every individual choice is at least as good as profile.
        for c in selection.choices() {
            assert!(
                c.chosen_misses <= c.profile_misses,
                "case {case} site {}",
                c.site
            );
        }
    }
}
