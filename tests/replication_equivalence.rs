//! Property-based testing of the replication transform: for random
//! branch-rich loop programs, applying the full selection must preserve
//! semantics exactly (result, output tape, step count, per-site branch
//! histogram) and must never make the static prediction worse.

mod common;

use brepl::core::{apply_plan, check_equivalence, select_strategies};
use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl::sim::{Machine, RunConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replication_preserves_semantics(
        seed in any::<u64>(),
        diamonds in 1usize..4,
        trip in 8i64..120,
    ) {
        let module = common::random_loop_module(seed, diamonds, trip);
        let trace = Machine::new(&module, RunConfig::default())
            .run("main", &[])
            .expect("generated programs terminate")
            .trace;
        prop_assume!(trace.len() > 10);

        for max_states in [2usize, 4] {
            let selection = select_strategies(&module, &trace, max_states);
            let plan = selection.to_plan();
            let program = apply_plan(&module, &plan, &trace.stats())
                .expect("replication applies");
            check_equivalence(&module, &program, "main", &[], &[])
                .expect("replicated program is equivalent");
        }
    }

    #[test]
    fn pipeline_never_degrades_prediction(
        seed in any::<u64>(),
        diamonds in 1usize..4,
        trip in 8i64..100,
    ) {
        let module = common::random_loop_module(seed, diamonds, trip);
        let config = PipelineConfig {
            max_states: 3,
            ..PipelineConfig::default()
        };
        let result = run_pipeline(&module, &[], &[], config).expect("pipeline runs");
        prop_assert!(
            result.replicated_misprediction_percent
                <= result.profile_misprediction_percent + 1e-9
        );
        prop_assert!(result.size_growth >= 1.0);
    }

    #[test]
    fn selection_misses_bounded_by_profile(
        seed in any::<u64>(),
        diamonds in 1usize..5,
        trip in 8i64..150,
    ) {
        let module = common::random_loop_module(seed, diamonds, trip);
        let trace = Machine::new(&module, RunConfig::default())
            .run("main", &[])
            .expect("terminates")
            .trace;
        prop_assume!(!trace.is_empty());
        let selection = select_strategies(&module, &trace, 4);
        prop_assert!(selection.total_misses() <= selection.profile_misses());
        // Every individual choice is at least as good as profile.
        for c in selection.choices() {
            prop_assert!(c.chosen_misses <= c.profile_misses, "site {}", c.site);
        }
    }
}
