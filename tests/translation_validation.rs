//! Mutation testing of the static translation validator: starting from a
//! genuine replicated program (loop replication of an alternating branch),
//! each test injects one class of miscompilation into the replicated
//! module — or one class of witness corruption — and asserts the validator
//! reports the documented diagnostic code:
//!
//! | mutation                  | code  |
//! |---------------------------|-------|
//! | retarget a branch edge    | BR004 |
//! | swap predicted direction  | BR006 |
//! | drop an instruction       | BR005 |
//! | rename a register         | BR005 (stream) / BR007 (live-in)         |
//! | append unreachable replica| BR001 (warning, never an error)          |

use brepl::core::replicate::{apply_plan, BranchMachine, ReplicatedProgram, ReplicationPlan};
use brepl::core::{HistPattern, MachineState, StateMachine};
use brepl::ir::{BlockId, BranchId, FunctionBuilder, Module, Operand, Term, Value};
use brepl::sim::{Machine as Sim, RunConfig};
use brepl_analysis::{has_errors, validate_replication, AnalysisDiag, DiagCode, Severity};

/// Loop over i in 0..100 with an alternating branch and an exit branch.
fn alternating_module() -> Module {
    let mut b = FunctionBuilder::new("main", 1);
    let n = b.param(0);
    let i = b.reg();
    let acc = b.reg();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    let head = b.new_block();
    let even = b.new_block();
    let odd = b.new_block();
    let latch = b.new_block();
    let exit = b.new_block();
    b.jmp(head);
    b.switch_to(head);
    let r = b.reg();
    b.rem(r, i.into(), Operand::imm(2));
    let c = b.eq(r.into(), Operand::imm(0));
    b.br(c, even, odd);
    b.switch_to(even);
    b.add(acc, acc.into(), Operand::imm(3));
    b.jmp(latch);
    b.switch_to(odd);
    b.add(acc, acc.into(), Operand::imm(5));
    b.jmp(latch);
    b.switch_to(latch);
    b.add(i, i.into(), Operand::imm(1));
    let c2 = b.lt(i.into(), n.into());
    b.br(c2, head, exit);
    b.switch_to(exit);
    b.out(acc.into());
    b.ret(Some(acc.into()));
    let mut m = Module::new();
    m.push_function(b.finish());
    m
}

fn flip_flop() -> StateMachine {
    StateMachine::from_states(
        vec![
            MachineState {
                pattern: HistPattern::parse("0").unwrap(),
                predict: true,
                on_taken: 1,
                on_not_taken: 0,
            },
            MachineState {
                pattern: HistPattern::parse("1").unwrap(),
                predict: false,
                on_taken: 1,
                on_not_taken: 0,
            },
        ],
        0,
    )
}

/// A faithful replication of the alternating module that validates clean.
fn replicated() -> (Module, ReplicatedProgram) {
    let m = alternating_module();
    let stats = Sim::new(&m, RunConfig::default())
        .unwrap()
        .run("main", &[Value::Int(100)])
        .unwrap()
        .trace
        .stats();
    let mut plan = ReplicationPlan::new();
    plan.assign(BranchId(0), BranchMachine::Loop(flip_flop()));
    let program = apply_plan(&m, &plan, &stats).unwrap();
    (m, program)
}

fn validate(original: &Module, program: &ReplicatedProgram) -> Vec<AnalysisDiag> {
    validate_replication(
        original,
        &program.module,
        &program.replica_map,
        &program.predictions,
    )
}

fn codes(diags: &[AnalysisDiag]) -> Vec<DiagCode> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn faithful_replication_validates_clean() {
    let (m, program) = replicated();
    let diags = validate(&m, &program);
    assert!(!has_errors(&diags), "{diags:?}");
}

#[test]
fn retargeted_edge_caught_as_br004() {
    let (m, mut program) = replicated();
    // Swap the arms of the first conditional branch of the replica: the
    // slot-wise edge projection no longer matches the original CFG.
    let fid = program.module.function_by_name("main").unwrap();
    let func = program.module.function_mut(fid);
    let mutated = func
        .blocks
        .iter_mut()
        .find_map(|b| match &mut b.term {
            Term::Br { then_, else_, .. } if then_ != else_ => {
                std::mem::swap(then_, else_);
                Some(())
            }
            _ => None,
        })
        .is_some();
    assert!(mutated, "test needs a two-armed branch to retarget");
    let diags = validate(&m, &program);
    assert!(
        codes(&diags).contains(&DiagCode::OrphanReplicaEdge),
        "expected BR004, got {diags:?}"
    );
}

#[test]
fn swapped_prediction_caught_as_br006() {
    let (m, mut program) = replicated();
    // Find a block whose prediction is pinned by a machine state and flip
    // the encoded direction.
    let fid = program.module.function_by_name("main").unwrap();
    let fmap = &program.replica_map.functions[fid.index()];
    let func = program.module.function(fid);
    let (bid, dir) = fmap
        .machine_predictions
        .iter()
        .enumerate()
        .find_map(|(i, p)| p.map(|d| (BlockId::from_index(i), d)))
        .expect("loop replication pins predictions");
    let site = func.block(bid).term.branch_site().expect("pinned => Br");
    program.predictions.set(site, !dir);
    let diags = validate(&m, &program);
    assert!(
        codes(&diags).contains(&DiagCode::PredictionMismatch),
        "expected BR006, got {diags:?}"
    );
}

#[test]
fn dropped_instruction_caught_as_br005() {
    let (m, mut program) = replicated();
    let fid = program.module.function_by_name("main").unwrap();
    let func = program.module.function_mut(fid);
    let block = func
        .blocks
        .iter_mut()
        .find(|b| !b.insts.is_empty())
        .expect("some block has instructions");
    block.insts.pop();
    let diags = validate(&m, &program);
    assert!(
        codes(&diags).contains(&DiagCode::InstStreamMismatch),
        "expected BR005, got {diags:?}"
    );
}

#[test]
fn renamed_register_caught() {
    let (m, mut program) = replicated();
    // Redirect one instruction's destination to a fresh register: the
    // instruction stream differs (BR005) and, depending on the use sites,
    // a consumer may now read a register the original never needed
    // (BR007). BR005 is guaranteed.
    let fid = program.module.function_by_name("main").unwrap();
    let func = program.module.function_mut(fid);
    let fresh = brepl::ir::Reg(func.n_regs);
    func.n_regs += 1;
    let block = func
        .blocks
        .iter_mut()
        .find(|b| !b.insts.is_empty())
        .expect("some block has instructions");
    use brepl::ir::Inst;
    match block.insts.first_mut().unwrap() {
        Inst::Const { dst, .. }
        | Inst::Copy { dst, .. }
        | Inst::Bin { dst, .. }
        | Inst::Cmp { dst, .. } => *dst = fresh,
        other => panic!("unexpected first instruction {other:?}"),
    }
    let diags = validate(&m, &program);
    assert!(
        codes(&diags).contains(&DiagCode::InstStreamMismatch),
        "expected BR005, got {diags:?}"
    );
}

#[test]
fn unreachable_replica_is_a_warning_not_an_error() {
    let (m, mut program) = replicated();
    // Append a clone of an existing block that nothing jumps to, and
    // extend the witness map accordingly: dead but consistent.
    let fid = program.module.function_by_name("main").unwrap();
    let func = program.module.function_mut(fid);
    let donor = BlockId::from_index(0);
    let clone = func.block(donor).clone();
    func.blocks.push(clone);
    program.module.renumber_branches();
    let fmap = &mut program.replica_map.functions[fid.index()];
    let chain = fmap.origins[donor.index()].clone();
    fmap.origins.push(chain);
    fmap.machine_predictions.push(None);

    let diags = validate(&m, &program);
    let unreachable: Vec<_> = diags
        .iter()
        .filter(|d| d.code == DiagCode::UnreachableReplica)
        .collect();
    assert!(!unreachable.is_empty(), "expected BR001, got {diags:?}");
    for d in &unreachable {
        assert_eq!(d.severity(), Severity::Warning);
    }
    assert!(!has_errors(&diags), "dead replica must not be an error");
}

#[test]
fn truncated_witness_caught_as_br008() {
    let (m, mut program) = replicated();
    program.replica_map.functions[0].origins.pop();
    let diags = validate(&m, &program);
    assert!(
        codes(&diags).contains(&DiagCode::InvalidReplicaMap),
        "expected BR008, got {diags:?}"
    );
}
