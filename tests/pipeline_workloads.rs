//! End-to-end pipeline runs over the whole benchmark suite: the paper's
//! workflow must hold on every program — semantics preserved, replicated
//! prediction no worse than profile, size growth within the configured
//! budget's ballpark.

use brepl::pipeline::{run_pipeline, run_pipeline_static, PipelineConfig};
use brepl::workloads::{all_workloads, workload_by_name, Scale};

#[test]
fn pipeline_improves_or_holds_every_workload() {
    for w in all_workloads(Scale::Small) {
        let result = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", w.name));
        assert!(
            result.replicated_misprediction_percent <= result.profile_misprediction_percent + 1e-9,
            "{}: replicated {:.3}% worse than profile {:.3}%",
            w.name,
            result.replicated_misprediction_percent,
            result.profile_misprediction_percent
        );
        assert!(
            result.size_growth >= 1.0,
            "{}: size shrank ({:.2})",
            w.name,
            result.size_growth
        );
        assert!(
            result.program.module.verify().is_ok(),
            "{}: replicated module invalid",
            w.name
        );
        // Both static gates ran (witness validation and the history
        // checker); the suite is warning-clean, so anything here is a
        // regression — e.g. a dead store creeping back into a workload.
        assert!(
            result.warnings.is_empty(),
            "{}: unexpected gate warnings: {:?}",
            w.name,
            result.warnings
        );
    }
}

#[test]
fn pipeline_gains_are_substantial_where_promised() {
    // doduc's convergence loop and predict's periodic branches must show
    // clear wins, the suite's bellwethers for the paper's headline.
    let check = |name: &str, min_relative_gain: f64| {
        let w = brepl::workloads::workload_by_name(name, Scale::Small).unwrap();
        let r = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default()).unwrap();
        let gain = (r.profile_misprediction_percent - r.replicated_misprediction_percent)
            / r.profile_misprediction_percent.max(1e-9);
        assert!(
            gain >= min_relative_gain,
            "{name}: gain {gain:.2} below {min_relative_gain}"
        );
    };
    check("doduc", 0.5);
    check("predict", 0.3);
    check("ghostview", 0.15);
}

#[test]
fn unlimited_budget_reaches_selection_promise() {
    let w = brepl::workloads::workload_by_name("doduc", Scale::Small).unwrap();
    let config = PipelineConfig {
        max_size_growth: None,
        ..PipelineConfig::default()
    };
    let r = run_pipeline(&w.module, &w.args, &w.input, config).unwrap();
    // Without a budget, the realized result lands near the selection's
    // promise (refinement may drop a few non-transferring machines).
    assert!(
        r.replicated_misprediction_percent <= r.selected_misprediction_percent + 3.0,
        "realized {:.2}% far from promised {:.2}%",
        r.replicated_misprediction_percent,
        r.selected_misprediction_percent
    );
}

/// The planner fast-path off-switch is pure: `BREPL_NO_CLASSIFY`
/// disables the proved-site search skip, and the shipped program must
/// stay bit-identical on every workload — the skip changes how a Profile
/// choice is *reached*, never what ships. (The select-level unit test
/// proves the same below the selection memo.)
#[test]
fn no_classify_switch_ships_bit_identical_programs() {
    for w in all_workloads(Scale::Small) {
        std::env::set_var("BREPL_NO_CLASSIFY", "1");
        let off = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default()).unwrap();
        std::env::remove_var("BREPL_NO_CLASSIFY");
        let on = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default()).unwrap();
        assert_eq!(off.program.module, on.program.module, "{}", w.name);
        assert_eq!(off.program.provenance, on.program.provenance, "{}", w.name);
        assert_eq!(off.replicated_sites, on.replicated_sites, "{}", w.name);
        let (s_off, s_on) = (off.classification.unwrap(), on.classification.unwrap());
        assert_eq!(
            s_off.planner_skips, 0,
            "{}: the skip ran with the switch set",
            w.name
        );
        assert_eq!(
            (s_off.proved, s_off.bounded, s_off.dependent),
            (s_on.proved, s_on.bounded, s_on.dependent),
            "{}",
            w.name
        );
        assert!(
            s_on.converged,
            "{}: classification fixpoint diverged",
            w.name
        );
    }
}

/// The `kmp` workload exists to pin the stack against real math: for
/// the pattern `ab` over uniform i.i.d. binary text every rate has a
/// closed form. The measured profile misprediction must sit at the
/// analytic 1/3 floor, and the static estimator must reproduce the
/// counted scan loop's bias as the *exact* rational `n/(n+1)` — not a
/// float near it — matching the measured counts digit for digit.
#[test]
fn kmp_closed_forms_hold_through_pipeline_and_estimator() {
    use brepl_analysis::{classify_module, estimate_profile, BiasEstimate};
    use brepl_ir::BranchId;

    let w = workload_by_name("kmp", Scale::Small).unwrap();
    let r = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default()).unwrap();
    assert!(
        (r.profile_misprediction_percent / 100.0 - 1.0 / 3.0).abs() < 0.02,
        "kmp profile misprediction {:.2}% off the analytic 1/3 floor",
        r.profile_misprediction_percent
    );

    let cls = classify_module(&w.module);
    let profile = estimate_profile(&w.module, &cls);
    assert!(profile.converged(), "kmp frequency propagation diverged");
    assert!(
        profile.check_conservation(&w.module).is_empty(),
        "kmp flow conservation violated"
    );
    let scan = profile.by_site(BranchId(0)).expect("scan loop estimated");
    match scan.bias {
        BiasEstimate::Exact { num, den } => {
            assert_eq!(den, num + 1, "scan loop bias must be n/(n+1)");
            // The estimate matches the measured counts exactly: the
            // loop runs n times and exits once.
            let measured = w.run().unwrap();
            let stats = measured.trace.stats();
            let s0 = stats.site(BranchId(0));
            assert_eq!(s0.taken, num, "estimated n disagrees with measured n");
            assert_eq!(s0.not_taken, 1);
        }
        BiasEstimate::Heuristic(p) => panic!("scan loop bias not proof-backed (got {p})"),
    }
    // The data branches are input-dependent: heuristic-only, never
    // promoted, and therefore outside the BR019 drift gate by design.
    for k in 1..=3u32 {
        let est = profile.by_site(BranchId(k)).expect("data site estimated");
        assert!(!est.bias.is_exact(), "site {k} wrongly claims a proof");
    }
}

/// The acceptance bar for profile-free planning: every workload in the
/// suite ships through [`run_pipeline_static`] with **zero profiling
/// runs** — planned purely from the synthesized static profile — and
/// the shipped program still clears the full `BR001`–`BR018` gate
/// stack, with the after-the-fact measurement confirming semantics.
#[test]
fn static_planning_ships_every_workload_without_profiling() {
    for w in all_workloads(Scale::Small) {
        let r = run_pipeline_static(&w.module, &w.args, &w.input, PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{}: static pipeline failed: {e}", w.name));
        assert!(r.static_planned, "{}", w.name);
        let est = r.estimate.expect("estimate summary present");
        assert!(est.converged, "{}: frequency propagation diverged", w.name);
        assert!(
            r.quarantined.is_empty(),
            "{}: gates quarantined {:?} on an honest static plan",
            w.name,
            r.quarantined
        );
        assert!(
            r.program.module.verify().is_ok(),
            "{}: statically-planned module invalid",
            w.name
        );
        // The re-measure run is real even though the plan was synthetic.
        assert!(
            r.replicated_misprediction_percent.is_finite()
                && (0.0..=100.0).contains(&r.replicated_misprediction_percent),
            "{}: bogus measured misprediction {}",
            w.name,
            r.replicated_misprediction_percent
        );
        // An empty static plan can shrink a module slightly (apply_plan
        // normalization), so the profiled path's `>= 1.0` bound relaxes
        // to "sane" here.
        assert!(
            r.size_growth > 0.9,
            "{}: size_growth {}",
            w.name,
            r.size_growth
        );
    }
}

#[test]
fn provenance_is_complete_and_consistent() {
    for w in all_workloads(Scale::Small).into_iter().take(3) {
        let r = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default()).unwrap();
        assert_eq!(
            r.program.provenance.len(),
            r.program.module.branch_count(),
            "{}",
            w.name
        );
        let original_branches = w.module.branch_count();
        for orig in &r.program.provenance {
            assert!(
                orig.index() < original_branches,
                "{}: provenance {orig} out of range",
                w.name
            );
        }
    }
}
