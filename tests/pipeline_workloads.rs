//! End-to-end pipeline runs over the whole benchmark suite: the paper's
//! workflow must hold on every program — semantics preserved, replicated
//! prediction no worse than profile, size growth within the configured
//! budget's ballpark.

use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl::workloads::{all_workloads, Scale};

#[test]
fn pipeline_improves_or_holds_every_workload() {
    for w in all_workloads(Scale::Small) {
        let result = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", w.name));
        assert!(
            result.replicated_misprediction_percent <= result.profile_misprediction_percent + 1e-9,
            "{}: replicated {:.3}% worse than profile {:.3}%",
            w.name,
            result.replicated_misprediction_percent,
            result.profile_misprediction_percent
        );
        assert!(
            result.size_growth >= 1.0,
            "{}: size shrank ({:.2})",
            w.name,
            result.size_growth
        );
        assert!(
            result.program.module.verify().is_ok(),
            "{}: replicated module invalid",
            w.name
        );
        // Both static gates ran (witness validation and the history
        // checker); the suite is warning-clean, so anything here is a
        // regression — e.g. a dead store creeping back into a workload.
        assert!(
            result.warnings.is_empty(),
            "{}: unexpected gate warnings: {:?}",
            w.name,
            result.warnings
        );
    }
}

#[test]
fn pipeline_gains_are_substantial_where_promised() {
    // doduc's convergence loop and predict's periodic branches must show
    // clear wins, the suite's bellwethers for the paper's headline.
    let check = |name: &str, min_relative_gain: f64| {
        let w = brepl::workloads::workload_by_name(name, Scale::Small).unwrap();
        let r = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default()).unwrap();
        let gain = (r.profile_misprediction_percent - r.replicated_misprediction_percent)
            / r.profile_misprediction_percent.max(1e-9);
        assert!(
            gain >= min_relative_gain,
            "{name}: gain {gain:.2} below {min_relative_gain}"
        );
    };
    check("doduc", 0.5);
    check("predict", 0.3);
    check("ghostview", 0.15);
}

#[test]
fn unlimited_budget_reaches_selection_promise() {
    let w = brepl::workloads::workload_by_name("doduc", Scale::Small).unwrap();
    let config = PipelineConfig {
        max_size_growth: None,
        ..PipelineConfig::default()
    };
    let r = run_pipeline(&w.module, &w.args, &w.input, config).unwrap();
    // Without a budget, the realized result lands near the selection's
    // promise (refinement may drop a few non-transferring machines).
    assert!(
        r.replicated_misprediction_percent <= r.selected_misprediction_percent + 3.0,
        "realized {:.2}% far from promised {:.2}%",
        r.replicated_misprediction_percent,
        r.selected_misprediction_percent
    );
}

/// The planner fast-path off-switch is pure: `BREPL_NO_CLASSIFY`
/// disables the proved-site search skip, and the shipped program must
/// stay bit-identical on every workload — the skip changes how a Profile
/// choice is *reached*, never what ships. (The select-level unit test
/// proves the same below the selection memo.)
#[test]
fn no_classify_switch_ships_bit_identical_programs() {
    for w in all_workloads(Scale::Small) {
        std::env::set_var("BREPL_NO_CLASSIFY", "1");
        let off = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default()).unwrap();
        std::env::remove_var("BREPL_NO_CLASSIFY");
        let on = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default()).unwrap();
        assert_eq!(off.program.module, on.program.module, "{}", w.name);
        assert_eq!(off.program.provenance, on.program.provenance, "{}", w.name);
        assert_eq!(off.replicated_sites, on.replicated_sites, "{}", w.name);
        let (s_off, s_on) = (off.classification.unwrap(), on.classification.unwrap());
        assert_eq!(
            s_off.planner_skips, 0,
            "{}: the skip ran with the switch set",
            w.name
        );
        assert_eq!(
            (s_off.proved, s_off.bounded, s_off.dependent),
            (s_on.proved, s_on.bounded, s_on.dependent),
            "{}",
            w.name
        );
        assert!(
            s_on.converged,
            "{}: classification fixpoint diverged",
            w.name
        );
    }
}

#[test]
fn provenance_is_complete_and_consistent() {
    for w in all_workloads(Scale::Small).into_iter().take(3) {
        let r = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default()).unwrap();
        assert_eq!(
            r.program.provenance.len(),
            r.program.module.branch_count(),
            "{}",
            w.name
        );
        let original_branches = w.module.branch_count();
        for orig in &r.program.provenance {
            assert!(
                orig.index() < original_branches,
                "{}: provenance {orig} out of range",
                w.name
            );
        }
    }
}
