//! End-to-end tests for the runtime re-specialization layer
//! ([`brepl::pipeline::run_pipeline_adaptive`]): drift recovery within
//! 10% of a from-scratch re-plan, demotion and re-inflation of machine
//! sites, proof-gated rollback, and flapping-site quarantine (`BR024`).

use brepl::core::{PatchKind, PatchOutcome};
use brepl::pipeline::{run_pipeline, run_pipeline_adaptive, AdaptiveConfig, PipelineConfig};
use brepl::workloads::kmp;
use brepl::workloads::synth::{gate_tape, input_gate_module, GatePattern};
use brepl_analysis::DiagCode;

const N: usize = 2000;

/// kmp over text whose bias flips from P('a')=¼ to ¾ after planning.
/// The closed forms say: before drift ≈ ⅔·¼ = 16.7% misprediction,
/// after drift unpatched ≈ 50% (three pins stale), after the swap
/// patches ≈ 16.7% again.
fn kmp_swap_segments() -> Vec<Vec<brepl::ir::Value>> {
    vec![
        kmp::biased_text(N, 7, 1, 4),
        kmp::biased_text(N, 8, 3, 4),
        kmp::biased_text(N, 9, 3, 4),
    ]
}

#[test]
fn kmp_swap_drift_recovers_within_ten_percent_of_replan() {
    let module = kmp::drift_module();
    let segments = kmp_swap_segments();
    let r = run_pipeline_adaptive(&module, &[], &segments, AdaptiveConfig::default()).unwrap();

    // The drift segment ran on stale pins: misprediction roughly
    // triples (16.7% → ~50%) before the patch lands.
    let before = r.segments[0].misprediction_percent;
    let drifted = r.segments[1].misprediction_percent;
    let patched = r.segments[2].misprediction_percent;
    assert!(before < 20.0, "pre-drift {before:.2}%");
    assert!(drifted > 2.0 * before, "unpatched drift {drifted:.2}%");
    assert!(patched < 20.0, "patched {patched:.2}%");

    // Swap patches committed at the drift segment and verified on the
    // next; nothing rolled back, nothing quarantined.
    assert!(!r.patch_log.is_empty());
    for rec in &r.patch_log {
        assert!(matches!(rec.kind, PatchKind::SwapPin { .. }), "{rec:?}");
        assert_eq!(rec.outcome, PatchOutcome::Verified, "{rec:?}");
        assert_eq!(rec.segment, 1, "{rec:?}");
    }
    assert!(r.respec_diags.is_empty(), "{:?}", r.respec_diags);
    assert!(r.quarantined_sites.is_empty());

    // Acceptance bar: the patched program is within 10% *relative* of a
    // full from-scratch re-plan on the post-drift distribution.
    let replan = run_pipeline(
        &module,
        &[],
        &kmp::biased_text(N, 9, 3, 4),
        PipelineConfig::default(),
    )
    .unwrap();
    let target = replan.replicated_misprediction_percent;
    assert!(
        patched <= target * 1.10 + 1e-9,
        "patched {patched:.2}% vs re-plan {target:.2}%"
    );
}

#[test]
fn stable_distribution_never_patches() {
    let module = kmp::drift_module();
    let segments = vec![
        kmp::biased_text(N, 3, 1, 2),
        kmp::biased_text(N, 4, 1, 2),
        kmp::biased_text(N, 5, 1, 2),
    ];
    let r = run_pipeline_adaptive(&module, &[], &segments, AdaptiveConfig::default()).unwrap();
    assert!(r.patch_log.is_empty(), "{:?}", r.patch_log);
    assert!(r.respec_diags.is_empty());
    // Misprediction stays flat across segments.
    for s in &r.segments {
        assert!(
            (s.misprediction_percent - r.segments[0].misprediction_percent).abs() < 5.0,
            "segment {} at {:.2}%",
            s.segment,
            s.misprediction_percent
        );
    }
}

/// The gate workload plans on an alternating tape (site 1 is a perfect
/// 2-state flip-flop, so a machine ships), then the tape goes constant:
/// the machine stops predicting and the patcher demotes the site to its
/// new profile majority.
#[test]
fn machine_site_demotes_when_its_pattern_dies() {
    let module = input_gate_module();
    let segments = vec![
        gate_tape(N, GatePattern::Alternating),
        gate_tape(N, GatePattern::Constant(1)),
        gate_tape(N, GatePattern::Constant(1)),
    ];
    let r = run_pipeline_adaptive(&module, &[], &segments, AdaptiveConfig::default()).unwrap();
    let site = brepl::ir::BranchId(1);
    assert!(
        r.plan.replicated_sites.contains(&site),
        "the alternating plan must ship a machine on the gate site: {:?}",
        r.plan.replicated_sites
    );
    let demote = r
        .patch_log
        .iter()
        .find(|rec| matches!(rec.kind, PatchKind::Demote { .. }))
        .unwrap_or_else(|| panic!("no demotion in {:?}", r.patch_log));
    assert_eq!(demote.site, site);
    assert_eq!(demote.outcome, PatchOutcome::Verified, "{demote:?}");
    assert!(r.demoted_sites.contains(&site));
    assert!(!r.enabled_sites.contains(&site));
    // The demoted pin (constant taken) predicts the constant tape
    // perfectly.
    let last = r.segments.last().unwrap();
    assert!(last.misprediction_percent < 5.0, "{last:?}");
}

/// Demote, then the drift reverses: the patcher re-inflates the
/// previously demoted machine once the observed rate returns to the
/// planning-time rate.
#[test]
fn demoted_machine_reinflates_when_drift_reverses() {
    let module = input_gate_module();
    let segments = vec![
        gate_tape(N, GatePattern::Alternating),
        gate_tape(N, GatePattern::Constant(1)),
        gate_tape(N, GatePattern::Constant(1)),
        gate_tape(N, GatePattern::Alternating),
        gate_tape(N, GatePattern::Alternating),
    ];
    let r = run_pipeline_adaptive(&module, &[], &segments, AdaptiveConfig::default()).unwrap();
    let site = brepl::ir::BranchId(1);
    let reinflate = r
        .patch_log
        .iter()
        .find(|rec| rec.kind == PatchKind::Reinflate)
        .unwrap_or_else(|| panic!("no re-inflation in {:?}", r.patch_log));
    assert_eq!(reinflate.site, site);
    assert_eq!(reinflate.outcome, PatchOutcome::Verified, "{reinflate:?}");
    // The machine is back in control and predicting the alternation.
    assert!(r.enabled_sites.contains(&site));
    assert!(!r.demoted_sites.contains(&site));
    let last = r.segments.last().unwrap();
    assert!(last.misprediction_percent < 5.0, "{last:?}");
}

/// A distribution that flips every segment: each committed patch fails
/// its verification window (the next segment flipped back), rolls back
/// byte-identically, and after `max_failures` rollbacks the site is
/// quarantined with `BR024` — exponential backoff caps the re-patch
/// attempts well below the number of drifting segments.
#[test]
fn flapping_site_is_quarantined_after_backoff() {
    let module = kmp::drift_module();
    let mut segments = Vec::new();
    for k in 0..8u64 {
        let (num, den) = if k % 2 == 0 { (1, 4) } else { (3, 4) };
        segments.push(kmp::biased_text(N, 100 + k, num, den));
    }
    let r = run_pipeline_adaptive(&module, &[], &segments, AdaptiveConfig::default()).unwrap();

    // Every committed patch was rolled back; none survived.
    let rolled: Vec<_> = r
        .patch_log
        .iter()
        .filter(|rec| rec.outcome == PatchOutcome::RolledBack)
        .collect();
    assert!(!rolled.is_empty(), "{:?}", r.patch_log);
    assert!(
        !r.patch_log
            .iter()
            .any(|rec| rec.outcome == PatchOutcome::Verified),
        "{:?}",
        r.patch_log
    );

    // BR023 fired for the rollbacks, BR024 for the flapping quarantine.
    let codes: Vec<_> = r.respec_diags.iter().map(|d| d.code).collect();
    assert!(codes.contains(&DiagCode::PatchRejected), "{codes:?}");
    assert!(codes.contains(&DiagCode::FlappingSite), "{codes:?}");
    assert!(!r.quarantined_sites.is_empty());

    // Backoff caps the attempts: with 7 post-plan segments and
    // max_failures = 2, at most 2 transactions ever committed.
    let commit_segments: std::collections::BTreeSet<usize> =
        rolled.iter().map(|rec| rec.segment).collect();
    assert!(commit_segments.len() <= 2, "{commit_segments:?}");

    // The final program is byte-identical to the never-patched plan:
    // every patch rolled back.
    let baseline = run_pipeline_adaptive(
        &module,
        &[],
        &segments[..1], // plan only, no drift segments
        AdaptiveConfig::default(),
    )
    .unwrap();
    assert_eq!(
        r.program.module.fingerprint(),
        baseline.program.module.fingerprint()
    );
}
