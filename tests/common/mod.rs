//! Shared helpers for the integration tests: a deterministic random
//! program generator producing terminating, branch-rich modules.
//!
//! The implementation lives in `brepl_workloads::synth` so the fuzz
//! harness binaries can use it too; this module just re-exports it.

// Each integration-test binary includes this module but uses only part
// of it.
#![allow(unused_imports)]

pub use brepl_workloads::synth::{random_loop_module, Gen};
