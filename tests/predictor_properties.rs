//! Property-style testing of the predictor zoo and pattern tables.
//! Cases are driven by a deterministic xorshift generator (the workspace
//! builds with zero network access, so no external property-testing
//! framework).

mod common;

use brepl::ir::BranchId;
use brepl::predict::dynamic::{LastDirection, SaturatingCounters, TwoBitCounters, TwoLevel};
use brepl::predict::semistatic::{combine_best, loop_report, profile_report};
use brepl::predict::{simulate_dynamic, HistoryKind, PatternTableSet};
use brepl::trace::{Trace, TraceEvent};
use common::Gen;

const CASES: u64 = 48;

/// Generates a 4000-event trace interleaving 1..=4 sites, each with a
/// behavior class (always-taken / periodic / alternating / biased-random)
/// and its own xorshift stream.
fn gen_trace(case: u64) -> Trace {
    let mut g = Gen::new(0x7AB1E ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n_specs = g.below(4) as usize + 1;
    let specs: Vec<(u32, u8, u64, u64)> = (0..n_specs)
        .map(|_| {
            (
                g.below(6) as u32,
                g.below(4) as u8,
                g.below(7) + 2,
                g.next(),
            )
        })
        .collect();
    let mut t = Trace::new();
    let mut rngs: Vec<u64> = specs.iter().map(|&(_, _, _, s)| s | 1).collect();
    for step in 0..4000usize {
        let idx = step % specs.len();
        let (site, class, period, _) = specs[idx];
        let r = &mut rngs[idx];
        *r ^= *r << 13;
        *r ^= *r >> 7;
        *r ^= *r << 17;
        let phase = (step / specs.len()) as u64;
        let taken = match class {
            0 => true,
            1 => phase % period != period - 1,
            2 => phase.is_multiple_of(2),
            _ => *r & 7 != 0,
        };
        t.push(TraceEvent {
            site: BranchId(site),
            taken,
        });
    }
    t
}

/// Every predictor's report covers the whole trace.
#[test]
fn reports_cover_all_events() {
    for case in 0..CASES {
        let trace = gen_trace(case);
        let n = trace.len() as u64;
        assert_eq!(
            simulate_dynamic(&mut LastDirection::new(), &trace).total(),
            n
        );
        assert_eq!(
            simulate_dynamic(&mut TwoBitCounters::new(), &trace).total(),
            n
        );
        assert_eq!(
            simulate_dynamic(&mut TwoLevel::paper_4k(), &trace).total(),
            n
        );
        assert_eq!(profile_report(&trace).total(), n);
        assert_eq!(loop_report(&trace, 5).total(), n);
    }
}

/// Profile prediction is optimal among per-site constant predictions,
/// so any history scheme's *ideal* table can only match or beat it.
#[test]
fn history_never_beats_by_less_than_profile() {
    for case in 0..CASES {
        let trace = gen_trace(case);
        let profile = profile_report(&trace);
        for bits in [1u32, 3, 6, 9] {
            let local = loop_report(&trace, bits);
            assert!(
                local.mispredictions() <= profile.mispredictions(),
                "case {case} bits={bits}: {} > {}",
                local.mispredictions(),
                profile.mispredictions()
            );
        }
    }
}

/// Longer ideal local history is monotonically at least as good.
#[test]
fn longer_history_monotone() {
    for case in 0..CASES {
        let trace = gen_trace(case);
        let mut prev = u64::MAX;
        for bits in 1..=9u32 {
            let w = loop_report(&trace, bits).mispredictions();
            assert!(w <= prev, "case {case} bits={bits}");
            prev = w;
        }
    }
}

/// The best-of combination is at least as good as either input.
#[test]
fn combine_best_dominates() {
    for case in 0..CASES {
        let trace = gen_trace(case);
        let a = loop_report(&trace, 2);
        let b = loop_report(&trace, 7);
        let c = combine_best(&a, &b);
        assert!(c.mispredictions() <= a.mispredictions(), "case {case}");
        assert!(c.mispredictions() <= b.mispredictions(), "case {case}");
        assert_eq!(c.total(), a.total(), "case {case}");
    }
}

/// Pattern-table suffix aggregation: the counts of the two refinements
/// of a suffix sum to the counts of the suffix itself.
#[test]
fn suffix_refinement_partitions() {
    for case in 0..CASES {
        let trace = gen_trace(case);
        let pts = PatternTableSet::build(&trace, HistoryKind::Local, 6);
        for (_, table) in pts.iter_sites() {
            for len in 0..5u32 {
                for suffix in 0..(1u32 << len) {
                    let whole = table.suffix_counts(suffix, len);
                    let zero = table.suffix_counts(suffix, len + 1);
                    let one = table.suffix_counts(suffix | 1 << len, len + 1);
                    assert_eq!(whole.taken, zero.taken + one.taken, "case {case}");
                    assert_eq!(
                        whole.not_taken,
                        zero.not_taken + one.not_taken,
                        "case {case}"
                    );
                }
            }
        }
    }
}

/// Saturating counters of any width track a constant stream perfectly
/// after warmup.
#[test]
fn counters_lock_onto_constant_streams() {
    for bits in 1u32..6 {
        for taken in [false, true] {
            let trace: Trace = (0..200)
                .map(|_| TraceEvent {
                    site: BranchId(0),
                    taken,
                })
                .collect();
            let report = simulate_dynamic(&mut SaturatingCounters::new(bits), &trace);
            // At most 2^(bits-1) warmup misses.
            assert!(
                report.mispredictions() <= 1 << bits.saturating_sub(1),
                "bits={bits} taken={taken}"
            );
        }
    }
}

/// Fill rate is within [0, 100].
#[test]
fn fill_rate_bounds() {
    for case in 0..CASES {
        let trace = gen_trace(case);
        for bits in 1..=9u32 {
            let f = PatternTableSet::build(&trace, HistoryKind::Local, bits).fill_rate_percent();
            assert!((0.0..=100.0).contains(&f), "case {case} bits={bits}");
        }
    }
}
