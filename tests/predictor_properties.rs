//! Property-based testing of the predictor zoo and pattern tables.

use brepl::ir::BranchId;
use brepl::predict::dynamic::{LastDirection, SaturatingCounters, TwoBitCounters, TwoLevel};
use brepl::predict::semistatic::{combine_best, loop_report, profile_report};
use brepl::predict::{simulate_dynamic, HistoryKind, PatternTableSet};
use brepl::trace::{Trace, TraceEvent};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Trace> {
    // A few sites, each with a behavior class and parameters.
    proptest::collection::vec((0u32..6, 0u8..4, 2u64..9, any::<u64>()), 1..5).prop_map(
        |site_specs| {
            let mut t = Trace::new();
            let mut rngs: Vec<u64> = site_specs.iter().map(|&(_, _, _, s)| s | 1).collect();
            for step in 0..4000usize {
                let idx = step % site_specs.len();
                let (site, class, period, _) = site_specs[idx];
                let r = &mut rngs[idx];
                *r ^= *r << 13;
                *r ^= *r >> 7;
                *r ^= *r << 17;
                let phase = (step / site_specs.len()) as u64;
                let taken = match class {
                    0 => true,
                    1 => phase % period != period - 1,
                    2 => phase.is_multiple_of(2),
                    _ => *r & 7 != 0,
                };
                t.push(TraceEvent {
                    site: BranchId(site),
                    taken,
                });
            }
            t
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every predictor's report covers the whole trace.
    #[test]
    fn reports_cover_all_events(trace in arb_trace()) {
        let n = trace.len() as u64;
        prop_assert_eq!(simulate_dynamic(&mut LastDirection::new(), &trace).total(), n);
        prop_assert_eq!(simulate_dynamic(&mut TwoBitCounters::new(), &trace).total(), n);
        prop_assert_eq!(simulate_dynamic(&mut TwoLevel::paper_4k(), &trace).total(), n);
        prop_assert_eq!(profile_report(&trace).total(), n);
        prop_assert_eq!(loop_report(&trace, 5).total(), n);
    }

    /// Profile prediction is optimal among per-site constant predictions,
    /// so any history scheme's *ideal* table can only match or beat it.
    #[test]
    fn history_never_beats_by_less_than_profile(trace in arb_trace()) {
        let profile = profile_report(&trace);
        for bits in [1u32, 3, 6, 9] {
            let local = loop_report(&trace, bits);
            prop_assert!(
                local.mispredictions() <= profile.mispredictions(),
                "bits={bits}: {} > {}",
                local.mispredictions(),
                profile.mispredictions()
            );
        }
    }

    /// Longer ideal local history is monotonically at least as good.
    #[test]
    fn longer_history_monotone(trace in arb_trace()) {
        let mut prev = u64::MAX;
        for bits in 1..=9u32 {
            let w = loop_report(&trace, bits).mispredictions();
            prop_assert!(w <= prev);
            prev = w;
        }
    }

    /// The best-of combination is at least as good as either input.
    #[test]
    fn combine_best_dominates(trace in arb_trace()) {
        let a = loop_report(&trace, 2);
        let b = loop_report(&trace, 7);
        let c = combine_best(&a, &b);
        prop_assert!(c.mispredictions() <= a.mispredictions());
        prop_assert!(c.mispredictions() <= b.mispredictions());
        prop_assert_eq!(c.total(), a.total());
    }

    /// Pattern-table suffix aggregation: the counts of the two refinements
    /// of a suffix sum to the counts of the suffix itself.
    #[test]
    fn suffix_refinement_partitions(trace in arb_trace()) {
        let pts = PatternTableSet::build(&trace, HistoryKind::Local, 6);
        for (_, table) in pts.iter_sites() {
            for len in 0..5u32 {
                for suffix in 0..(1u32 << len) {
                    let whole = table.suffix_counts(suffix, len);
                    let zero = table.suffix_counts(suffix, len + 1);
                    let one = table.suffix_counts(suffix | 1 << len, len + 1);
                    prop_assert_eq!(whole.taken, zero.taken + one.taken);
                    prop_assert_eq!(whole.not_taken, zero.not_taken + one.not_taken);
                }
            }
        }
    }

    /// Saturating counters of any width track a constant stream perfectly
    /// after warmup.
    #[test]
    fn counters_lock_onto_constant_streams(bits in 1u32..6, taken in any::<bool>()) {
        let trace: Trace = (0..200)
            .map(|_| TraceEvent { site: BranchId(0), taken })
            .collect();
        let report = simulate_dynamic(&mut SaturatingCounters::new(bits), &trace);
        // At most 2^(bits-1) warmup misses.
        prop_assert!(report.mispredictions() <= 1 << bits.saturating_sub(1));
    }

    /// Fill rate is within [0, 100] and weakly decreasing in history bits
    /// for traces long enough to saturate short tables.
    #[test]
    fn fill_rate_bounds(trace in arb_trace()) {
        for bits in 1..=9u32 {
            let f = PatternTableSet::build(&trace, HistoryKind::Local, bits).fill_rate_percent();
            prop_assert!((0.0..=100.0).contains(&f));
        }
    }
}
