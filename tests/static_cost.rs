//! Differential testing of the static misprediction bound: the bound the
//! cost model derives by folding the profiling trace through the
//! replicated control flow must never undercut what the simulator
//! measures, and on the didactic Figure-1 CFG it must agree *exactly* —
//! the replay is a faithful abstract execution, not an estimate.

use brepl::core::machine::MachineState;
use brepl::core::replicate::{apply_plan, BranchMachine, ReplicationPlan};
use brepl::core::{HistPattern, StateMachine};
use brepl::ir::{BranchId, FunctionBuilder, Module, Operand};
use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl::sim::{Machine, RunConfig};
use brepl::workloads::{all_workloads, Scale};
use brepl_analysis::static_cost;

#[test]
fn static_bound_never_undercuts_the_simulator_on_any_workload() {
    for w in all_workloads(Scale::Small) {
        let r = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", w.name));
        let mut machine = Machine::new(&w.module, RunConfig::default()).unwrap();
        machine.set_input(w.input.clone());
        let trace = machine.run("main", &w.args).unwrap().trace;
        let report = static_cost(
            &w.module,
            &r.program.module,
            &r.program.provenance,
            &r.program.predictions,
            &trace,
            "main",
        )
        .unwrap_or_else(|e| panic!("{}: cost replay failed: {e}", w.name));
        assert!(
            report.bound_percent() + 1e-9 >= r.replicated_misprediction_percent,
            "{}: static bound {:.4}% undercuts simulated {:.4}%",
            w.name,
            report.bound_percent(),
            r.replicated_misprediction_percent
        );
    }
}

/// The Figure-1 demo: a 16-iteration loop whose branch alternates, tamed
/// by a two-state flip-flop.
fn demo_module() -> Module {
    let mut b = FunctionBuilder::new("main", 0);
    let i = b.reg();
    let acc = b.reg();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    let head = b.new_block();
    let arm2 = b.new_block();
    let arm3 = b.new_block();
    let latch = b.new_block();
    let exit = b.new_block();
    b.jmp(head);
    b.switch_to(head);
    let r = b.reg();
    b.rem(r, i.into(), Operand::imm(2));
    let c = b.eq(r.into(), Operand::imm(0));
    b.br(c, arm2, arm3);
    b.switch_to(arm2);
    b.add(acc, acc.into(), Operand::imm(1));
    b.jmp(latch);
    b.switch_to(arm3);
    b.mul(acc, acc.into(), Operand::imm(2));
    b.jmp(latch);
    b.switch_to(latch);
    b.add(i, i.into(), Operand::imm(1));
    let more = b.lt(i.into(), Operand::imm(16));
    b.br(more, head, exit);
    b.switch_to(exit);
    b.out(acc.into());
    b.ret(Some(acc.into()));
    let mut m = Module::new();
    m.push_function(b.finish());
    m
}

fn flip_flop() -> StateMachine {
    StateMachine::from_states(
        vec![
            MachineState {
                pattern: HistPattern::parse("0").unwrap(),
                predict: true,
                on_taken: 1,
                on_not_taken: 0,
            },
            MachineState {
                pattern: HistPattern::parse("1").unwrap(),
                predict: false,
                on_taken: 1,
                on_not_taken: 0,
            },
        ],
        0,
    )
}

#[test]
fn static_bound_is_exact_on_the_demo_cfg() {
    let m = demo_module();
    let trace = Machine::new(&m, RunConfig::default())
        .unwrap()
        .run("main", &[])
        .unwrap()
        .trace;
    let mut plan = ReplicationPlan::new();
    plan.assign(BranchId(0), BranchMachine::Loop(flip_flop()));
    let program = apply_plan(&m, &plan, &trace.stats()).unwrap();

    let report = static_cost(
        &m,
        &program.module,
        &program.provenance,
        &program.predictions,
        &trace,
        "main",
    )
    .unwrap();

    // Ground truth: run the replicated module and score its pins against
    // the branch outcomes it actually produces.
    let replicated_trace = Machine::new(&program.module, RunConfig::default())
        .unwrap()
        .run("main", &[])
        .unwrap()
        .trace;
    let simulated: u64 = replicated_trace
        .iter()
        .filter(|ev| program.predictions.get(ev.site) != ev.taken)
        .count() as u64;

    assert_eq!(report.total_events, trace.len() as u64);
    assert_eq!(
        report.total_bound(),
        simulated,
        "the replay must agree with the simulator event for event"
    );
    // The flip-flop kills the alternation: only the warm-up and loop-exit
    // events can miss.
    assert!(
        report.total_bound() <= 2,
        "demo bound unexpectedly large: {}",
        report.total_bound()
    );
}
